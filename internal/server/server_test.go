package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func gtx480XML(t testing.TB) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "pdlxml", "testdata", "gtx480.pdl.xml"))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func newTestServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func doReq(t testing.TB, method, url string, body []byte, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// metricValue extracts the value of a plain (unlabelled) metric line.
func metricValue(t testing.TB, metricsBody, name string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` ([0-9.eE+-]+)$`)
	m := re.FindStringSubmatch(metricsBody)
	if m == nil {
		t.Fatalf("metric %s not found in:\n%s", name, metricsBody)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// The issue's acceptance scenario: upload the example GTX480 platform XML,
// query workers by logic group over HTTP, record observations, get a
// prediction, and watch /metrics counters advance; a repeated query must be
// served by the cache (asserted via the cache-hit metric).
func TestEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// 1. Upload.
	resp, body := doReq(t, "PUT", ts.URL+"/platforms/gtx480", gtx480XML(t), nil)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT status = %d: %s", resp.StatusCode, body)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("PUT returned no ETag")
	}
	var putOut struct {
		Platform struct {
			Revision uint64 `json:"revision"`
			Units    int    `json:"units"`
		} `json:"platform"`
		Changed bool   `json:"changed"`
		Version uint64 `json:"version"`
	}
	if err := json.Unmarshal(body, &putOut); err != nil {
		t.Fatal(err)
	}
	if !putOut.Changed || putOut.Platform.Revision != 1 || putOut.Version != 1 {
		t.Fatalf("put response = %+v", putOut)
	}

	// 2. Query workers by logic group through the DSL.
	queryURL := ts.URL + "/platforms/gtx480/pus?kind=worker&group=devset"
	resp, body = doReq(t, "GET", queryURL, nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first query X-Cache = %q; want miss", got)
	}
	var qOut struct {
		Count int `json:"count"`
		PUs   []struct {
			ID    string `json:"id"`
			Class string `json:"class"`
			Arch  string `json:"arch"`
		} `json:"pus"`
	}
	if err := json.Unmarshal(body, &qOut); err != nil {
		t.Fatal(err)
	}
	if qOut.Count != 1 || qOut.PUs[0].ID != "dev0" || qOut.PUs[0].Arch != "gpu" {
		t.Fatalf("query result = %+v", qOut)
	}

	// 3. The repeated identical query is served from the cache.
	resp, _ = doReq(t, "GET", queryURL, nil, nil)
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("repeated query X-Cache = %q; want hit", got)
	}

	// 4. Observe three calibration points, then predict.
	for _, obs := range []string{
		`{"codelet":"dgemm","size":1e9,"seconds":0.1}`,
		`{"codelet":"dgemm","size":2e9,"seconds":0.2}`,
		`{"codelet":"dgemm","size":4e9,"seconds":0.4}`,
	} {
		resp, body = doReq(t, "POST", ts.URL+"/platforms/gtx480/observe", []byte(obs), nil)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("observe status = %d: %s", resp.StatusCode, body)
		}
	}
	resp, body = doReq(t, "GET", ts.URL+"/platforms/gtx480/predict?codelet=dgemm&size=3e9", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status = %d: %s", resp.StatusCode, body)
	}
	var pOut struct {
		Seconds float64 `json:"seconds"`
		Pattern string  `json:"pattern"`
		Samples int     `json:"samples"`
	}
	if err := json.Unmarshal(body, &pOut); err != nil {
		t.Fatal(err)
	}
	// Observations describe a 10 GFLOP/s machine; 3e9 ⇒ ~0.3 s.
	if pOut.Seconds < 0.25 || pOut.Seconds > 0.35 {
		t.Fatalf("predicted %g s; want ~0.3", pOut.Seconds)
	}
	if pOut.Pattern == "" || pOut.Samples != 3 {
		t.Fatalf("prediction = %+v", pOut)
	}

	// 5. Metrics advanced: request counters, cache hit, store version.
	_, mBody := doReq(t, "GET", ts.URL+"/metrics", nil, nil)
	metrics := string(mBody)
	if v := metricValue(t, metrics, "pdlserved_query_cache_hits_total"); v < 1 {
		t.Fatalf("cache hits = %g; want >= 1", v)
	}
	if v := metricValue(t, metrics, "pdlserved_store_version"); v != 1 {
		t.Fatalf("store version metric = %g; want 1", v)
	}
	if v := metricValue(t, metrics, "pdlserved_platforms"); v != 1 {
		t.Fatalf("platforms metric = %g; want 1", v)
	}
	if v := metricValue(t, metrics, "pdlserved_request_seconds_count"); v < 7 {
		t.Fatalf("request count = %g; want >= 7", v)
	}
	if !strings.Contains(metrics, `pdlserved_requests_total{method="GET",route="GET /platforms/{name}/pus",code="200"} 2`) {
		t.Fatalf("per-route counter missing:\n%s", metrics)
	}
}

// Satellite: conditional GETs — If-None-Match on the current ETag returns
// 304 with no body; a stale ETag returns the full document.
func TestConditionalGet(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, _ := doReq(t, "PUT", ts.URL+"/platforms/gtx480", gtx480XML(t), nil)
	etag := resp.Header.Get("ETag")

	resp, body := doReq(t, "GET", ts.URL+"/platforms/gtx480", nil, nil)
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("<Platform")) {
		t.Fatalf("GET = %d, body %q", resp.StatusCode, body[:min(40, len(body))])
	}
	if resp.Header.Get("ETag") != etag {
		t.Fatalf("GET ETag %q != PUT ETag %q", resp.Header.Get("ETag"), etag)
	}

	resp, body = doReq(t, "GET", ts.URL+"/platforms/gtx480", nil, map[string]string{"If-None-Match": etag})
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional GET = %d; want 304", resp.StatusCode)
	}
	if len(body) != 0 {
		t.Fatalf("304 carried a body: %q", body)
	}
	// List syntax and * also hit.
	resp, _ = doReq(t, "GET", ts.URL+"/platforms/gtx480", nil, map[string]string{"If-None-Match": `"zzz", ` + etag})
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("list conditional GET = %d; want 304", resp.StatusCode)
	}
	resp, _ = doReq(t, "GET", ts.URL+"/platforms/gtx480", nil, map[string]string{"If-None-Match": "*"})
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("wildcard conditional GET = %d; want 304", resp.StatusCode)
	}
	// Stale tag: full response.
	resp, _ = doReq(t, "GET", ts.URL+"/platforms/gtx480", nil, map[string]string{"If-None-Match": `"0000"`})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stale conditional GET = %d; want 200", resp.StatusCode)
	}
}

func TestUploadValidationRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	doc := `<Platform name="dup" schemaVersion="1.0">
  <Master id="m"><PUDescriptor><Property fixed="true"><name>ARCHITECTURE</name><value>x86</value></Property></PUDescriptor>
    <Worker id="w"><PUDescriptor><Property fixed="true"><name>ARCHITECTURE</name><value>gpu</value></Property></PUDescriptor></Worker>
    <Worker id="w"><PUDescriptor><Property fixed="true"><name>ARCHITECTURE</name><value>gpu</value></Property></PUDescriptor></Worker>
  </Master>
</Platform>`
	resp, body := doReq(t, "PUT", ts.URL+"/platforms/dup", []byte(doc), nil)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var out errorBody
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Problems) == 0 {
		t.Fatalf("422 body lists no problems: %s", body)
	}
	resp, _ = doReq(t, "PUT", ts.URL+"/platforms/junk", []byte("not xml"), nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unparseable upload status = %d; want 400", resp.StatusCode)
	}
}

// Satellite: every invalid filter argument is reported in one pass.
func TestQueryReportsAllProblems(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	doReq(t, "PUT", ts.URL+"/platforms/gtx480", gtx480XML(t), nil)
	resp, body := doReq(t, "GET",
		ts.URL+"/platforms/gtx480/pus?kind=banana&limit=-3&bogus=1&select=%2F%2FUnknown", nil, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var out errorBody
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Problems) != 4 {
		t.Fatalf("problems = %v; want all 4 reported", out.Problems)
	}
}

func TestNotFoundRoutes(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, url := range []string{
		"/platforms/nope",
		"/platforms/nope/pus",
		"/platforms/nope/predict?codelet=x&size=1",
		"/platforms/nope/rank?iface=x&size=1",
	} {
		resp, _ := doReq(t, "GET", ts.URL+url, nil, nil)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s = %d; want 404", url, resp.StatusCode)
		}
	}
	resp, _ := doReq(t, "DELETE", ts.URL+"/platforms/nope", nil, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE = %d; want 404", resp.StatusCode)
	}
}

func TestBodyLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 64})
	resp, _ := doReq(t, "PUT", ts.URL+"/platforms/big", gtx480XML(t), nil)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d; want 413", resp.StatusCode)
	}
	_, mBody := doReq(t, "GET", ts.URL+"/metrics", nil, nil)
	if v := metricValue(t, string(mBody), "pdlserved_body_too_large_total"); v != 1 {
		t.Fatalf("body_too_large metric = %g; want 1", v)
	}
}

func TestRateLimit(t *testing.T) {
	s, ts := newTestServer(t, Config{RateLimit: 1, RateBurst: 3})
	// Freeze the limiter clock so the bucket cannot refill mid-test.
	now := time.Now()
	s.limiter.now = func() time.Time { return now }
	saw429 := false
	for i := 0; i < 6; i++ {
		resp, _ := doReq(t, "GET", ts.URL+"/healthz", nil, nil)
		if resp.StatusCode == http.StatusTooManyRequests {
			saw429 = true
			if ra := resp.Header.Get("Retry-After"); ra == "" {
				t.Fatal("429 without Retry-After")
			}
		}
	}
	if !saw429 {
		t.Fatal("burst of 6 against burst=3 never rate-limited")
	}
	// Advancing the clock refills the bucket.
	now = now.Add(5 * time.Second)
	resp, _ := doReq(t, "GET", ts.URL+"/healthz", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after refill: %d", resp.StatusCode)
	}
	_, mBody := doReq(t, "GET", ts.URL+"/metrics", nil, nil)
	if v := metricValue(t, string(mBody), "pdlserved_ratelimited_total"); v < 1 {
		t.Fatalf("ratelimited metric = %g; want >= 1", v)
	}
}

func TestAccessLog(t *testing.T) {
	var buf syncBuffer
	_, ts := newTestServer(t, Config{AccessLog: &buf})
	doReq(t, "GET", ts.URL+"/healthz", nil, nil)
	line := strings.TrimSpace(buf.String())
	var rec map[string]any
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("access log line is not JSON: %q", line)
	}
	if rec["method"] != "GET" || rec["path"] != "/healthz" || rec["status"] != float64(200) {
		t.Fatalf("record = %v", rec)
	}
	if _, ok := rec["ms"]; !ok {
		t.Fatalf("record lacks latency: %v", rec)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for the access-log test (the
// handler writes from server goroutines).
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// Concurrent uploads and queries through the full HTTP stack; run under
// -race via the Makefile race subset.
func TestConcurrentHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	doc := gtx480XML(t)
	alt := bytes.Replace(doc, []byte("devset"), []byte("altset"), 1)
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				body := doc
				if i%2 == 0 {
					body = alt
				}
				resp, data := doReq(t, "PUT", fmt.Sprintf("%s/platforms/p%d", ts.URL, w), body, nil)
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
					t.Errorf("PUT = %d: %s", resp.StatusCode, data)
					return
				}
			}
		}(w)
	}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				url := fmt.Sprintf("%s/platforms/p%d/pus?kind=worker", ts.URL, i%3)
				resp, _ := doReq(t, "GET", url, nil, nil)
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
					t.Errorf("GET = %d", resp.StatusCode)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	resp, body := doReq(t, "GET", ts.URL+"/metrics", nil, nil)
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("pdlserved_requests_total")) {
		t.Fatalf("metrics after hammer: %d", resp.StatusCode)
	}
}

func TestObserveRejectsBadPayloads(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	doReq(t, "PUT", ts.URL+"/platforms/gtx480", gtx480XML(t), nil)
	for _, payload := range []string{
		`{"codelet":"","size":1,"seconds":1}`,
		`{"codelet":"x","size":-1,"seconds":1}`,
		`{"codelet":"x","size":1,"seconds":0}`,
		`{"codelet":"x","size":1,"seconds":1,"extra":true}`,
		`not json`,
	} {
		resp, _ := doReq(t, "POST", ts.URL+"/platforms/gtx480/observe", []byte(payload), nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("payload %q status = %d; want 400", payload, resp.StatusCode)
		}
	}
}
