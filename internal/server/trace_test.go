package server

import (
	"net/http"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// /debug/trace serves the process's most recently published trace in both
// export formats, and /metrics renders the runtime registry after the
// server's own families.
func TestDebugTraceEndpoint(t *testing.T) {
	prev := trace.Published()
	t.Cleanup(func() { trace.Publish(prev) })

	_, ts := newTestServer(t, Config{})

	// No published trace yet → 404.
	trace.Publish(nil)
	resp, _ := doReq(t, "GET", ts.URL+"/debug/trace", nil, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("empty-process status = %d", resp.StatusCode)
	}

	tr := trace.New()
	tr.SetMeta("scheduler", "ws")
	tr.Record(trace.Event{Kind: trace.Task, Unit: "worker0", Label: "t", Start: 0, End: 1, TaskID: 0})
	tr.Record(trace.Event{Kind: trace.Task, Unit: "worker1", Label: "u", Start: 1, End: 2, TaskID: 1, ParentIDs: []int{0}, Worker: 1})
	trace.Publish(tr)

	// Default format: Chrome trace_event JSON, losslessly re-importable.
	resp, body := doReq(t, "GET", ts.URL+"/debug/trace", nil, nil)
	if resp.StatusCode != 200 || resp.Header.Get("Content-Type") != "application/json" {
		t.Fatalf("chrome: status=%d type=%q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	got, err := trace.ReadBytes(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.Meta()["scheduler"] != "ws" {
		t.Fatalf("chrome round trip: len=%d meta=%v", got.Len(), got.Meta())
	}

	// ?format=jsonl streams the JSONL form.
	resp, body = doReq(t, "GET", ts.URL+"/debug/trace?format=jsonl", nil, nil)
	if resp.StatusCode != 200 || !strings.HasPrefix(string(body), `{"format":"pdltrace"`) {
		t.Fatalf("jsonl: status=%d body=%.60s", resp.StatusCode, body)
	}
	if got, err = trace.ReadBytes(body); err != nil || got.Len() != 2 {
		t.Fatalf("jsonl round trip: %v len=%d", err, got.Len())
	}

	resp, _ = doReq(t, "GET", ts.URL+"/debug/trace?format=svg", nil, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown format status = %d", resp.StatusCode)
	}
}

func TestMetricsIncludesRuntimeRegistry(t *testing.T) {
	rt := metrics.New()
	rt.CounterVec("taskrt_test_tasks_total", "test family", "unit").With("worker0").Add(7)
	_, ts := newTestServer(t, Config{RuntimeMetrics: rt})
	resp, body := doReq(t, "GET", ts.URL+"/metrics", nil, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	out := string(body)
	if !strings.Contains(out, `taskrt_test_tasks_total{unit="worker0"} 7`) {
		t.Fatalf("runtime family missing from /metrics:\n%s", out)
	}
	// Server families render first, runtime families after.
	if strings.Index(out, "pdlserved_") > strings.Index(out, "taskrt_test_") {
		t.Fatalf("registry order wrong:\n%s", out)
	}
}
