package server

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Worker leases: pdlworkerd processes announce themselves so cluster
// masters can discover execution nodes through the same registry that
// already holds the platform descriptions they execute against. Leases are
// deliberately in-memory only — a worker that cannot heartbeat through a
// pdlserved restart re-registers on its next beat (registration is an
// idempotent upsert), so journaling leases would only resurrect stale
// entries. This mirrors how the paper separates the durable platform
// description from the transient population of units using it.

// DefaultWorkerTTL is the lease lifetime when Config.WorkerTTL is zero;
// pdlworkerd heartbeats at a third of this.
const DefaultWorkerTTL = 15 * time.Second

// WorkerInfo is the registration payload and the list projection of a
// lease. Addr is the worker's execute endpoint base URL; Platform names the
// PDL document (usually also registered here) describing the node; Archs
// are the architecture tags the worker's codelet registry can execute.
type WorkerInfo struct {
	ID       string   `json:"id"`
	Addr     string   `json:"addr"`
	Platform string   `json:"platform"`
	Archs    []string `json:"archs,omitempty"`
	Workers  int      `json:"workers,omitempty"` // local worker goroutines
}

// workerLease is a live registration with its expiry.
type workerLease struct {
	WorkerInfo
	Registered time.Time
	LastSeen   time.Time
}

// workerTable is the lease store. Expiry is lazy: reads prune on access, so
// no background reaper is needed and tests control time via now().
type workerTable struct {
	mu     sync.Mutex
	leases map[string]*workerLease
	ttl    time.Duration
	now    func() time.Time
}

func newWorkerTable(ttl time.Duration) *workerTable {
	if ttl <= 0 {
		ttl = DefaultWorkerTTL
	}
	return &workerTable{leases: map[string]*workerLease{}, ttl: ttl, now: time.Now}
}

// upsert registers or renews a lease, reporting whether it was new.
func (t *workerTable) upsert(info WorkerInfo) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	t.pruneLocked(now)
	l, ok := t.leases[info.ID]
	if !ok {
		l = &workerLease{Registered: now}
		t.leases[info.ID] = l
	}
	l.WorkerInfo = info
	l.LastSeen = now
	return !ok
}

// beat renews an existing lease; false means the lease is unknown or
// expired and the worker must re-register.
func (t *workerTable) beat(id string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	t.pruneLocked(now)
	l, ok := t.leases[id]
	if !ok {
		return false
	}
	l.LastSeen = now
	return true
}

func (t *workerTable) drop(id string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, ok := t.leases[id]
	delete(t.leases, id)
	return ok
}

func (t *workerTable) pruneLocked(now time.Time) {
	for id, l := range t.leases {
		if now.Sub(l.LastSeen) > t.ttl {
			delete(t.leases, id)
		}
	}
}

// list returns active leases sorted by id.
func (t *workerTable) list() []workerLease {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.pruneLocked(t.now())
	out := make([]workerLease, 0, len(t.leases))
	for _, l := range t.leases {
		out = append(out, *l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (t *workerTable) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.pruneLocked(t.now())
	return len(t.leases)
}

// workerOut is the list/registration response shape.
type workerOut struct {
	WorkerInfo
	TTLSeconds float64 `json:"ttl_seconds"`
	AgeSeconds float64 `json:"age_seconds"`
}

func (s *Server) handleWorkerPut(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		// A drain must not take on new lease obligations: arriving workers
		// are told to come back to whatever replaces this process.
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, "server is draining; not accepting worker leases")
		return
	}
	id := r.PathValue("id")
	var info WorkerInfo
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&info); err != nil {
		writeError(w, http.StatusBadRequest, "decoding worker registration: "+err.Error())
		return
	}
	if info.ID == "" {
		info.ID = id
	}
	if info.ID != id {
		writeError(w, http.StatusBadRequest, "body id does not match path id")
		return
	}
	if info.Addr == "" {
		writeError(w, http.StatusBadRequest, "worker registration needs addr")
		return
	}
	created := s.workers.upsert(info)
	code := http.StatusOK
	if created {
		code = http.StatusCreated
	}
	writeJSON(w, code, workerOut{WorkerInfo: info, TTLSeconds: s.workers.ttl.Seconds()})
}

func (s *Server) handleWorkerBeat(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, "server is draining; not renewing worker leases")
		return
	}
	id := r.PathValue("id")
	if !s.workers.beat(id) {
		// Expired or never registered: the worker re-registers with the
		// full payload rather than us resurrecting a lease from thin air.
		writeError(w, http.StatusNotFound, "unknown worker lease (re-register)")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"renewed": true, "ttl_seconds": s.workers.ttl.Seconds()})
}

func (s *Server) handleWorkerDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.workers.drop(id) {
		writeError(w, http.StatusNotFound, "unknown worker lease")
		return
	}
	// A deregistered worker's federated series must disappear with its
	// lease — a fleet scrape of a dead node would otherwise keep exporting
	// its last kernel histograms forever.
	s.fleet.Drop(id)
	writeJSON(w, http.StatusOK, map[string]any{"deleted": true})
}

func (s *Server) handleWorkerList(w http.ResponseWriter, r *http.Request) {
	leases := s.workers.list()
	now := s.workers.now()
	out := make([]workerOut, 0, len(leases))
	for _, l := range leases {
		out = append(out, workerOut{
			WorkerInfo: l.WorkerInfo,
			TTLSeconds: s.workers.ttl.Seconds(),
			AgeSeconds: now.Sub(l.Registered).Seconds(),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"workers": out})
}
