package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func workerServer(t *testing.T, ttl time.Duration) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Config{WorkerTTL: ttl})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestWorkerRegisterListDeregister(t *testing.T) {
	_, ts := workerServer(t, 0)

	resp := postJSON(t, ts.URL+"/workers/w1", WorkerInfo{
		ID: "w1", Addr: "http://127.0.0.1:9001", Platform: "xeon-phi", Archs: []string{"x86"}, Workers: 4,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register status = %d; want 201", resp.StatusCode)
	}
	var reg workerOut
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		t.Fatal(err)
	}
	if reg.TTLSeconds != DefaultWorkerTTL.Seconds() {
		t.Fatalf("ttl = %v; want default %v", reg.TTLSeconds, DefaultWorkerTTL.Seconds())
	}

	// Re-registration is an upsert, not a conflict.
	if resp := postJSON(t, ts.URL+"/workers/w1", WorkerInfo{ID: "w1", Addr: "http://127.0.0.1:9002"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("re-register status = %d; want 200", resp.StatusCode)
	}

	resp, err := http.Get(ts.URL + "/workers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Workers []workerOut `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Workers) != 1 || list.Workers[0].Addr != "http://127.0.0.1:9002" {
		t.Fatalf("list = %+v; want the updated w1 lease", list.Workers)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/workers/w1", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete status = %d", dresp.StatusCode)
	}
	if dresp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNotFound {
		t.Fatalf("second delete status = %d; want 404", dresp.StatusCode)
	}
}

func TestWorkerRegistrationValidation(t *testing.T) {
	_, ts := workerServer(t, 0)
	// Missing addr.
	if resp := postJSON(t, ts.URL+"/workers/w1", WorkerInfo{ID: "w1"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("no-addr status = %d; want 400", resp.StatusCode)
	}
	// Mismatched id.
	if resp := postJSON(t, ts.URL+"/workers/w1", WorkerInfo{ID: "other", Addr: "http://x"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mismatched-id status = %d; want 400", resp.StatusCode)
	}
}

func TestWorkerHeartbeatAndExpiry(t *testing.T) {
	s, ts := workerServer(t, time.Hour)
	now := time.Now()
	s.workers.now = func() time.Time { return now }

	postJSON(t, ts.URL+"/workers/w1", WorkerInfo{ID: "w1", Addr: "http://x"})
	if resp := postJSON(t, ts.URL+"/workers/w1/heartbeat", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("heartbeat status = %d", resp.StatusCode)
	}

	// A beat inside the TTL keeps the lease alive past the original expiry.
	now = now.Add(45 * time.Minute)
	if resp := postJSON(t, ts.URL+"/workers/w1/heartbeat", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("mid-ttl heartbeat status = %d", resp.StatusCode)
	}
	now = now.Add(45 * time.Minute)
	if got := s.workers.len(); got != 1 {
		t.Fatalf("lease count after renewal = %d; want 1", got)
	}

	// Silence past the TTL expires the lease; the next beat demands
	// re-registration.
	now = now.Add(2 * time.Hour)
	if got := s.workers.len(); got != 0 {
		t.Fatalf("lease count after expiry = %d; want 0", got)
	}
	if resp := postJSON(t, ts.URL+"/workers/w1/heartbeat", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("expired heartbeat status = %d; want 404", resp.StatusCode)
	}
}

// BeginDrain must refuse new lease obligations (register + heartbeat 503
// with Retry-After) while leaving reads and the rest of the API serving.
func TestDrainRefusesWorkerLeases(t *testing.T) {
	s, ts := workerServer(t, 0)
	postJSON(t, ts.URL+"/workers/w1", WorkerInfo{ID: "w1", Addr: "http://x"})

	s.BeginDrain()
	resp := postJSON(t, ts.URL+"/workers/w2", WorkerInfo{ID: "w2", Addr: "http://y"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("register during drain = %d; want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("drain rejection lacks Retry-After")
	}
	var body struct {
		Error string `json:"error"`
	}
	json.NewDecoder(resp.Body).Decode(&body)
	if !strings.Contains(body.Error, "draining") {
		t.Fatalf("error = %q; want drain message", body.Error)
	}
	if resp := postJSON(t, ts.URL+"/workers/w1/heartbeat", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("heartbeat during drain = %d; want 503", resp.StatusCode)
	}

	// Reads still work: discovery of existing workers keeps serving so a
	// master can finish the wave it has in flight.
	lresp, err := http.Get(ts.URL + "/workers")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	if lresp.StatusCode != http.StatusOK {
		t.Fatalf("list during drain = %d; want 200", lresp.StatusCode)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz during drain = %d", hresp.StatusCode)
	}
}

func TestWorkersMetricGauge(t *testing.T) {
	_, ts := workerServer(t, 0)
	postJSON(t, ts.URL+"/workers/w1", WorkerInfo{ID: "w1", Addr: "http://x"})
	postJSON(t, ts.URL+"/workers/w2", WorkerInfo{ID: "w2", Addr: "http://y"})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if !strings.Contains(buf.String(), "pdlserved_workers 2") {
		t.Fatalf("metrics lack pdlserved_workers 2:\n%s", buf.String())
	}
}
