// Package sim provides the discrete-event simulation primitives used by the
// simulated execution engine: a virtual clock with an event heap, and
// serially-occupied resources with availability-time semantics (processing
// units, interconnect links).
//
// Nothing in this package reads wall-clock time; simulations are
// deterministic functions of their inputs.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is virtual time in seconds.
type Time float64

// event is one scheduled callback.
type event struct {
	at  Time
	seq uint64 // FIFO tie-break for equal times
	fn  func(Time)
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Engine is a discrete-event executor. The zero value is ready to use.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// is an error.
func (e *Engine) At(t Time, fn func(Time)) error {
	if t < e.now {
		return fmt.Errorf("sim: schedule at %v before now %v", t, e.now)
	}
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
	e.seq++
	return nil
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d Time, fn func(Time)) error {
	if d < 0 {
		return fmt.Errorf("sim: negative delay %v", d)
	}
	return e.At(e.now+d, fn)
}

// Run processes events until the queue drains or maxEvents callbacks have
// run (0 means unlimited). It returns the number of events processed.
func (e *Engine) Run(maxEvents int) int {
	n := 0
	for len(e.events) > 0 {
		if maxEvents > 0 && n >= maxEvents {
			break
		}
		ev := heap.Pop(&e.events).(event)
		e.now = ev.at
		ev.fn(ev.at)
		n++
	}
	return n
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }

// Resource models a serially-occupied facility (a processing unit, a PCIe
// link): requests are served one at a time in arrival order, each no earlier
// than its ready time.
type Resource struct {
	Name  string
	avail Time
	busy  Time // accumulated occupied seconds
	uses  int
}

// Acquire reserves the resource for dur seconds, starting no earlier than
// ready. It returns the actual start and end times and advances the
// availability horizon.
func (r *Resource) Acquire(ready, dur Time) (start, end Time) {
	start = ready
	if r.avail > start {
		start = r.avail
	}
	end = start + dur
	r.avail = end
	r.busy += dur
	r.uses++
	return start, end
}

// Available returns the time at which the resource next becomes free.
func (r *Resource) Available() Time { return r.avail }

// Busy returns the total occupied seconds.
func (r *Resource) Busy() Time { return r.busy }

// Uses returns how many acquisitions were made.
func (r *Resource) Uses() int { return r.uses }

// Utilization returns busy time as a fraction of the horizon (0 when the
// horizon is empty).
func (r *Resource) Utilization(horizon Time) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(r.busy) / float64(horizon)
}
