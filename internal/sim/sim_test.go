package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	var e Engine
	var order []int
	if err := e.At(2, func(Time) { order = append(order, 2) }); err != nil {
		t.Fatal(err)
	}
	if err := e.At(1, func(Time) { order = append(order, 1) }); err != nil {
		t.Fatal(err)
	}
	if err := e.At(1, func(Time) { order = append(order, 10) }); err != nil {
		t.Fatal(err)
	}
	n := e.Run(0)
	if n != 3 {
		t.Fatalf("processed %d events", n)
	}
	// Equal times run in scheduling order (FIFO tie-break).
	if len(order) != 3 || order[0] != 1 || order[1] != 10 || order[2] != 2 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 2 {
		t.Fatalf("now = %v", e.Now())
	}
}

func TestEngineCascadingEvents(t *testing.T) {
	var e Engine
	count := 0
	var tick func(Time)
	tick = func(now Time) {
		count++
		if count < 5 {
			if err := e.After(1, tick); err != nil {
				t.Errorf("After: %v", err)
			}
		}
	}
	if err := e.After(1, tick); err != nil {
		t.Fatal(err)
	}
	e.Run(0)
	if count != 5 || e.Now() != 5 {
		t.Fatalf("count=%d now=%v", count, e.Now())
	}
}

func TestEnginePastScheduleFails(t *testing.T) {
	var e Engine
	_ = e.At(5, func(Time) {})
	e.Run(0)
	if err := e.At(1, func(Time) {}); err == nil {
		t.Fatal("scheduling in the past must fail")
	}
	if err := e.After(-1, func(Time) {}); err == nil {
		t.Fatal("negative delay must fail")
	}
}

func TestEngineMaxEvents(t *testing.T) {
	var e Engine
	for i := 0; i < 10; i++ {
		_ = e.At(Time(i), func(Time) {})
	}
	if n := e.Run(3); n != 3 {
		t.Fatalf("Run(3) = %d", n)
	}
	if e.Pending() != 7 {
		t.Fatalf("pending = %d", e.Pending())
	}
	e.Run(0)
	if e.Pending() != 0 {
		t.Fatal("queue not drained")
	}
}

func TestResourceSerialization(t *testing.T) {
	r := Resource{Name: "pu0"}
	s1, e1 := r.Acquire(0, 10)
	if s1 != 0 || e1 != 10 {
		t.Fatalf("first acquire = %v..%v", s1, e1)
	}
	// Ready before availability: starts when free.
	s2, e2 := r.Acquire(5, 3)
	if s2 != 10 || e2 != 13 {
		t.Fatalf("second acquire = %v..%v", s2, e2)
	}
	// Ready after availability: starts at ready (idle gap).
	s3, e3 := r.Acquire(20, 2)
	if s3 != 20 || e3 != 22 {
		t.Fatalf("third acquire = %v..%v", s3, e3)
	}
	if r.Busy() != 15 {
		t.Fatalf("busy = %v", r.Busy())
	}
	if r.Uses() != 3 {
		t.Fatalf("uses = %d", r.Uses())
	}
	if u := r.Utilization(30); u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %v", u)
	}
	if r.Utilization(0) != 0 {
		t.Fatal("utilization with empty horizon should be 0")
	}
	if r.Available() != 22 {
		t.Fatalf("available = %v", r.Available())
	}
}

// Property-based: a resource never overlaps acquisitions and busy time is
// the sum of durations.
func TestQuickResourceInvariants(t *testing.T) {
	f := func(readies []uint8, durs []uint8) bool {
		var r Resource
		n := len(readies)
		if len(durs) < n {
			n = len(durs)
		}
		var prevEnd Time
		var total Time
		for i := 0; i < n; i++ {
			ready := Time(readies[i] % 50)
			dur := Time(durs[i]%20) + 1
			s, e := r.Acquire(ready, dur)
			if s < prevEnd || s < ready || e != s+dur {
				return false
			}
			prevEnd = e
			total += dur
		}
		return r.Busy() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
