// Package simhw instantiates a simulated heterogeneous machine from a PDL
// platform description. It is the substitution for the paper's physical
// testbed (dual-socket Xeon X5550 + GTX480 + GTX285): processing units
// become virtual-time resources whose kernel execution costs derive from the
// calibration properties carried in the PDL document (PEAK_GFLOPS_DP,
// DGEMM_EFFICIENCY, KERNEL_LAUNCH_US), and interconnects become bandwidth/
// latency links between memory nodes.
//
// The PDL document is the single source of truth: changing the descriptor
// changes the machine, which is precisely the property the paper claims for
// explicit platform descriptions.
package simhw

import (
	"fmt"

	"repro/internal/core"
)

// Unit is one simulated processing-unit instance.
type Unit struct {
	ID       string // expanded PU instance id, e.g. "host.3" or "dev0"
	Arch     string // PDL ARCHITECTURE tag
	Class    core.Class
	MemNode  int     // memory node holding this unit's directly addressable data
	GFlopsDP float64 // sustained double-precision GEMM rate (GFLOP/s)
	LaunchS  float64 // per-kernel launch overhead in seconds
}

// CanRun reports whether the unit can execute an implementation targeted at
// the given architecture tag ("x86" kernels run on any master-class x86
// core, "gpu" kernels only on gpu units, and so on).
func (u *Unit) CanRun(arch string) bool { return u.Arch == arch }

// Link is a directed bandwidth/latency edge between two memory nodes.
type Link struct {
	From, To  int     // memory node ids
	Bandwidth float64 // bytes per second
	Latency   float64 // seconds
}

// TransferTime returns the virtual seconds needed to move n bytes.
func (l *Link) TransferTime(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	return l.Latency + float64(bytes)/l.Bandwidth
}

// Machine is the simulated hardware: units, memory nodes and links.
type Machine struct {
	Name  string
	Units []*Unit
	// links[from][to] is the direct link between nodes, if any.
	links    map[int]map[int]*Link
	numNodes int
}

// Defaults applied when a PDL document omits calibration or link properties:
// a conservative CPU-core rate and a PCIe-2.0-class link.
const (
	DefaultGFlopsDP   = 8.0
	DefaultEfficiency = 0.7
	DefaultLaunchS    = 1e-6
	DefaultLinkBW     = 5.0 * (1 << 30) // bytes/s
	DefaultLinkLat    = 10e-6
)

// FromPlatform builds the simulated machine from a PDL platform. Quantities
// are expanded (a Master with quantity 8 becomes 8 CPU units sharing memory
// node 0). Every Master/Hybrid instance shares node 0 (host RAM); every
// Worker gets its own memory node (device memory), matching the distinct
// memory spaces of the paper's machine model. Declared interconnects set the
// host↔device link characteristics.
func FromPlatform(pl *core.Platform) (*Machine, error) {
	if err := pl.Validate(); err != nil {
		return nil, fmt.Errorf("simhw: %w", err)
	}
	ex := pl.Expand()
	m := &Machine{Name: pl.Name, links: map[int]map[int]*Link{}}
	m.numNodes = 1 // node 0 = host RAM

	// Map original (unexpanded) worker PU id -> memory node, so interconnect
	// endpoints can be resolved to nodes.
	nodeOf := map[string]int{}
	ex.Walk(func(pu, _ *core.PU) bool {
		node := 0
		if pu.Class == core.Worker {
			node = m.numNodes
			m.numNodes++
		}
		nodeOf[pu.ID] = node
		rate := unitRate(pu)
		launch := unitLaunch(pu)
		m.Units = append(m.Units, &Unit{
			ID:       pu.ID,
			Arch:     pu.Architecture(),
			Class:    pu.Class,
			MemNode:  node,
			GFlopsDP: rate,
			LaunchS:  launch,
		})
		return true
	})

	// Wire declared interconnects between the endpoint nodes.
	for _, ic := range ex.Interconnects() {
		from, okF := nodeOf[ic.From]
		to, okT := nodeOf[ic.To]
		if !okF || !okT || from == to {
			continue
		}
		bw, ok := ic.BandwidthBytesPerSec()
		if !ok {
			bw = DefaultLinkBW
		}
		lat, ok := ic.LatencySeconds()
		if !ok {
			lat = DefaultLinkLat
		}
		m.addLink(from, to, bw, lat)
		if ic.Duplex {
			m.addLink(to, from, bw, lat)
		}
	}
	// Guarantee host↔device connectivity even when the descriptor omits
	// links (abstract patterns): default PCIe characteristics.
	for _, u := range m.Units {
		if u.MemNode != 0 && m.link(0, u.MemNode) == nil {
			m.addLink(0, u.MemNode, DefaultLinkBW, DefaultLinkLat)
			m.addLink(u.MemNode, 0, DefaultLinkBW, DefaultLinkLat)
		}
	}
	if len(m.Units) == 0 {
		return nil, fmt.Errorf("simhw: platform %q has no units", pl.Name)
	}
	return m, nil
}

func unitRate(pu *core.PU) float64 {
	peak, ok := pu.Descriptor.Float(core.PropGFlopsDP)
	if !ok {
		peak = DefaultGFlopsDP
	}
	eff, ok := pu.Descriptor.Float("DGEMM_EFFICIENCY")
	if !ok {
		eff = DefaultEfficiency
	}
	return peak * eff
}

func unitLaunch(pu *core.PU) float64 {
	us, ok := pu.Descriptor.Float("KERNEL_LAUNCH_US")
	if !ok {
		return DefaultLaunchS
	}
	return us * 1e-6
}

func (m *Machine) addLink(from, to int, bw, lat float64) {
	if m.links[from] == nil {
		m.links[from] = map[int]*Link{}
	}
	m.links[from][to] = &Link{From: from, To: to, Bandwidth: bw, Latency: lat}
}

func (m *Machine) link(from, to int) *Link {
	if row, ok := m.links[from]; ok {
		return row[to]
	}
	return nil
}

// NumNodes returns the number of memory nodes.
func (m *Machine) NumNodes() int { return m.numNodes }

// TransferTime returns the virtual seconds to move bytes between two memory
// nodes (0 when src == dst). Missing direct links route through node 0
// (host RAM), which mirrors real PCIe topologies where device-to-device
// copies are staged through the host.
func (m *Machine) TransferTime(from, to int, bytes int64) (float64, error) {
	if from == to {
		return 0, nil
	}
	if l := m.link(from, to); l != nil {
		return l.TransferTime(bytes), nil
	}
	l1, l2 := m.link(from, 0), m.link(0, to)
	if from != 0 && to != 0 && l1 != nil && l2 != nil {
		return l1.TransferTime(bytes) + l2.TransferTime(bytes), nil
	}
	return 0, fmt.Errorf("simhw: no route between memory nodes %d and %d", from, to)
}

// KernelTime returns the virtual seconds unit u needs to execute flops
// floating-point operations, including launch overhead.
func (m *Machine) KernelTime(u *Unit, flops float64) float64 {
	if flops <= 0 {
		return u.LaunchS
	}
	return u.LaunchS + flops/(u.GFlopsDP*1e9)
}

// UnitsByArch returns the units with the given architecture tag.
func (m *Machine) UnitsByArch(arch string) []*Unit {
	var out []*Unit
	for _, u := range m.Units {
		if u.Arch == arch {
			out = append(out, u)
		}
	}
	return out
}

// Unit returns the unit with the given id, or nil.
func (m *Machine) Unit(id string) *Unit {
	for _, u := range m.Units {
		if u.ID == id {
			return u
		}
	}
	return nil
}

// ScaleLinks multiplies every link bandwidth by factor; used by the
// bandwidth-sweep ablation experiment.
func (m *Machine) ScaleLinks(factor float64) {
	for _, row := range m.links {
		for _, l := range row {
			l.Bandwidth *= factor
		}
	}
}

// String summarises the machine.
func (m *Machine) String() string {
	return fmt.Sprintf("simhw.Machine{%s: %d units, %d memory nodes}", m.Name, len(m.Units), m.numNodes)
}
