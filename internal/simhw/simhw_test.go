package simhw

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/discover"
)

func TestFromPlatformXeon2GPU(t *testing.T) {
	pl := discover.MustPlatform("xeon-2gpu")
	m, err := FromPlatform(pl)
	if err != nil {
		t.Fatal(err)
	}
	cpus := m.UnitsByArch("x86")
	gpus := m.UnitsByArch("gpu")
	if len(cpus) != 8 {
		t.Fatalf("cpu units = %d; want 8 (quantity expansion)", len(cpus))
	}
	if len(gpus) != 2 {
		t.Fatalf("gpu units = %d", len(gpus))
	}
	// All CPU cores share node 0; GPUs have distinct nodes.
	for _, u := range cpus {
		if u.MemNode != 0 {
			t.Fatalf("cpu %s on node %d", u.ID, u.MemNode)
		}
	}
	if gpus[0].MemNode == gpus[1].MemNode || gpus[0].MemNode == 0 {
		t.Fatalf("gpu nodes = %d, %d", gpus[0].MemNode, gpus[1].MemNode)
	}
	if m.NumNodes() != 3 {
		t.Fatalf("nodes = %d", m.NumNodes())
	}
	// Calibration flows from the PDL: 10.64 * 0.92 for cores.
	want := 10.64 * 0.92
	if math.Abs(cpus[0].GFlopsDP-want) > 1e-9 {
		t.Fatalf("cpu rate = %g; want %g", cpus[0].GFlopsDP, want)
	}
	g480 := m.Unit("dev0")
	if g480 == nil || math.Abs(g480.GFlopsDP-168*0.65) > 1e-9 {
		t.Fatalf("gtx480 rate = %+v", g480)
	}
	if !strings.Contains(m.String(), "xeon-2gpu") {
		t.Fatalf("String() = %q", m.String())
	}
}

func TestKernelTime(t *testing.T) {
	pl := discover.MustPlatform("xeon-2gpu")
	m, err := FromPlatform(pl)
	if err != nil {
		t.Fatal(err)
	}
	cpu := m.UnitsByArch("x86")[0]
	gpu := m.Unit("dev0")
	flops := 2.0 * 1024 * 1024 * 1024 // 1024^3 tile GEMM ~ 2 GFLOP
	tc := m.KernelTime(cpu, flops)
	tg := m.KernelTime(gpu, flops)
	if tc <= tg {
		t.Fatalf("cpu (%g s) should be slower than gtx480 (%g s)", tc, tg)
	}
	// Expected ~2/9.79 ≈ 0.204 s for a core.
	if tc < 0.15 || tc > 0.35 {
		t.Fatalf("cpu kernel time = %g s, outside plausible window", tc)
	}
	// Zero-flop kernels still pay launch overhead.
	if got := m.KernelTime(gpu, 0); got != gpu.LaunchS {
		t.Fatalf("zero-flop time = %g", got)
	}
}

func TestTransferTime(t *testing.T) {
	pl := discover.MustPlatform("xeon-2gpu")
	m, err := FromPlatform(pl)
	if err != nil {
		t.Fatal(err)
	}
	gpu0 := m.Unit("dev0")
	gpu1 := m.Unit("dev1")
	const mb64 = 64 << 20
	// Host -> GPU0 over 5 GB/s: ~12.5 ms + 10 us.
	d, err := m.TransferTime(0, gpu0.MemNode, mb64)
	if err != nil {
		t.Fatal(err)
	}
	wantBase := float64(mb64) / (5 * (1 << 30))
	if math.Abs(d-(wantBase+10e-6)) > 1e-6 {
		t.Fatalf("transfer = %g; want %g", d, wantBase+10e-6)
	}
	// Same node: free.
	if d, _ := m.TransferTime(0, 0, mb64); d != 0 {
		t.Fatalf("same-node transfer = %g", d)
	}
	// GPU0 -> GPU1 has no direct link: staged through host, twice the cost.
	d2, err := m.TransferTime(gpu0.MemNode, gpu1.MemNode, mb64)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d2-2*d) > 1e-6 {
		t.Fatalf("staged transfer = %g; want %g", d2, 2*d)
	}
}

func TestDefaultsWhenDescriptorOmitsCalibration(t *testing.T) {
	pl, err := core.NewBuilder("bare").
		Master("m", core.Arch("x86")).
		Worker("w", core.Arch("gpu")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := FromPlatform(pl)
	if err != nil {
		t.Fatal(err)
	}
	u := m.Unit("m")
	if u.GFlopsDP != DefaultGFlopsDP*DefaultEfficiency {
		t.Fatalf("default rate = %g", u.GFlopsDP)
	}
	// No declared link: default PCIe wired in both directions.
	w := m.Unit("w")
	if _, err := m.TransferTime(0, w.MemNode, 1<<20); err != nil {
		t.Fatalf("default link missing: %v", err)
	}
	if _, err := m.TransferTime(w.MemNode, 0, 1<<20); err != nil {
		t.Fatalf("default reverse link missing: %v", err)
	}
}

func TestFromPlatformRejectsInvalid(t *testing.T) {
	if _, err := FromPlatform(&core.Platform{}); err == nil {
		t.Fatal("invalid platform must fail")
	}
}

func TestScaleLinks(t *testing.T) {
	m, err := FromPlatform(discover.MustPlatform("xeon-2gpu"))
	if err != nil {
		t.Fatal(err)
	}
	node := m.Unit("dev0").MemNode
	before, _ := m.TransferTime(0, node, 64<<20)
	m.ScaleLinks(2)
	after, _ := m.TransferTime(0, node, 64<<20)
	if after >= before {
		t.Fatalf("doubling bandwidth did not reduce transfer: %g -> %g", before, after)
	}
}

func TestCanRun(t *testing.T) {
	m, err := FromPlatform(discover.MustPlatform("xeon-2gpu"))
	if err != nil {
		t.Fatal(err)
	}
	cpu := m.UnitsByArch("x86")[0]
	gpu := m.Unit("dev0")
	if !cpu.CanRun("x86") || cpu.CanRun("gpu") {
		t.Fatal("cpu CanRun wrong")
	}
	if !gpu.CanRun("gpu") || gpu.CanRun("x86") {
		t.Fatal("gpu CanRun wrong")
	}
}

func TestCellBladeMachine(t *testing.T) {
	m, err := FromPlatform(discover.MustPlatform("cell-blade"))
	if err != nil {
		t.Fatal(err)
	}
	spes := m.UnitsByArch("spe")
	if len(spes) != 8 {
		t.Fatalf("spes = %d", len(spes))
	}
	// Each SPE has a local store node.
	nodes := map[int]bool{}
	for _, s := range spes {
		nodes[s.MemNode] = true
	}
	if len(nodes) != 8 {
		t.Fatalf("spe nodes = %d distinct", len(nodes))
	}
}
