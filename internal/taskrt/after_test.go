package taskrt

import (
	"math"
	"strings"
	"testing"

	"repro/internal/discover"
)

func TestExplicitDependenciesSerialise(t *testing.T) {
	// Two tasks with no shared data would run in parallel on 8 cores;
	// an explicit After dependency forces them back to back.
	run := func(explicit bool) float64 {
		rt, err := New(Config{Platform: discover.MustPlatform("xeon-cpu"), Mode: Sim})
		if err != nil {
			t.Fatal(err)
		}
		cl := dgemmCodelet(t)
		t1 := &Task{Codelet: cl, Flops: 2e9}
		t2 := &Task{Codelet: cl, Flops: 2e9}
		if explicit {
			t2.After = []*Task{t1}
		}
		if err := rt.Submit(t1); err != nil {
			t.Fatal(err)
		}
		if err := rt.Submit(t2); err != nil {
			t.Fatal(err)
		}
		rep, err := rt.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep.MakespanSeconds
	}
	parallel := run(false)
	serial := run(true)
	if math.Abs(serial-2*parallel)/serial > 0.01 {
		t.Fatalf("explicit dep: serial %g, parallel %g; want 2x", serial, parallel)
	}
}

func TestExplicitDependencyMixesWithDataDeps(t *testing.T) {
	rt, err := New(Config{Platform: cpuPlatform(t, 2)})
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	mk := func(name string) *Codelet {
		cl, err := NewCodelet(name, Impl{Arch: "x86", Func: func(tc *TaskContext) error {
			order = append(order, tc.Task.Label) // workers=1 keeps this safe
			return nil
		}})
		if err != nil {
			t.Fatal(err)
		}
		return cl
	}
	rt.cfg.Workers = 1
	h := rt.NewHandle("h", 8, nil)
	a := &Task{Codelet: mk("a"), Accesses: []Access{W(h)}, Label: "a"}
	b := &Task{Codelet: mk("b"), Label: "b", After: []*Task{a}}
	c := &Task{Codelet: mk("c"), Accesses: []Access{R(h)}, Label: "c", After: []*Task{b}}
	for _, task := range []*Task{a, b, c} {
		if err := rt.Submit(task); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(c.Deps()); got != 2 {
		t.Fatalf("c deps = %d; want data dep on a plus explicit dep on b", got)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("order = %v", order)
	}
}

func TestExplicitDependencyValidation(t *testing.T) {
	rt, err := New(Config{Platform: cpuPlatform(t, 2)})
	if err != nil {
		t.Fatal(err)
	}
	cl := noopCodelet(t, "n")
	if err := rt.Submit(&Task{Codelet: cl, After: []*Task{nil}}); err == nil {
		t.Fatal("nil explicit dependency must fail")
	}
	ghost := &Task{Codelet: cl}
	err = rt.Submit(&Task{Codelet: cl, After: []*Task{ghost}})
	if err == nil || !strings.Contains(err.Error(), "not yet submitted") {
		t.Fatalf("err = %v", err)
	}
}
