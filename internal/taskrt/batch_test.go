package taskrt

import (
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// buildRandomDAGTasks generates the same layered pseudo-random graph as
// buildRandomDAGWith but returns the tasks unsubmitted, so tests can hand the
// whole graph to SubmitBatch.
func buildRandomDAGTasks(rt *Runtime, cl *Codelet, seed int64, layers, width int) []*Task {
	rng := rand.New(rand.NewSource(seed))
	var prev []*Handle
	var out []*Task
	for l := 0; l < layers; l++ {
		var cur []*Handle
		for w := 0; w < width; w++ {
			h := rt.NewHandle("h", 1<<18, nil)
			cur = append(cur, h)
			accesses := []Access{W(h)}
			if len(prev) > 0 {
				n := 1 + rng.Intn(3)
				seen := map[int]bool{}
				for k := 0; k < n; k++ {
					i := rng.Intn(len(prev))
					if seen[i] {
						continue
					}
					seen[i] = true
					accesses = append(accesses, R(prev[i]))
				}
			}
			out = append(out, &Task{
				Codelet:  cl,
				Accesses: accesses,
				Flops:    float64(1+rng.Intn(4)) * 1e8,
			})
		}
		prev = cur
	}
	return out
}

func TestSubmitBatchLifecycle(t *testing.T) {
	cl, err := NewCodelet("noop", Impl{Arch: "x86", Func: func(*TaskContext) error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(Config{Platform: cpuPlatform(t, 1), Mode: Real, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.SubmitBatch([]*Task{{Codelet: cl}}); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	err = rt.SubmitBatch([]*Task{{Codelet: cl}})
	if err == nil || !strings.Contains(err.Error(), "Submit after Run") {
		t.Fatalf("SubmitBatch after Run = %v, want lifecycle error", err)
	}
}

// A failing task is reported by its batch index, and — matching sequential
// Submit semantics — tasks before it stay registered.
func TestSubmitBatchErrorIndex(t *testing.T) {
	cl, err := NewCodelet("noop", Impl{Arch: "x86", Func: func(*TaskContext) error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(Config{Platform: cpuPlatform(t, 1), Mode: Real, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	batch := []*Task{{Codelet: cl}, {Codelet: cl}, {Codelet: nil}}
	err = rt.SubmitBatch(batch)
	if err == nil || !strings.Contains(err.Error(), "batch task 2") {
		t.Fatalf("SubmitBatch = %v, want error naming batch task 2", err)
	}
	if rt.Tasks() != 2 {
		t.Fatalf("tasks registered = %d, want the 2 preceding the failure", rt.Tasks())
	}
}

// Intra-batch dependency derivation matches sequential Submit: later batch
// entries depend on earlier ones through shared handles and After.
func TestSubmitBatchIntraBatchDeps(t *testing.T) {
	cl, err := NewCodelet("noop", Impl{Arch: "x86", Func: func(*TaskContext) error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(Config{Platform: cpuPlatform(t, 1), Mode: Real, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	h := rt.NewHandle("h", 8, nil)
	producer := &Task{Codelet: cl, Accesses: []Access{W(h)}}
	reader := &Task{Codelet: cl, Accesses: []Access{R(h)}}
	explicit := &Task{Codelet: cl, After: []*Task{producer}}
	if err := rt.SubmitBatch([]*Task{producer, reader, explicit}); err != nil {
		t.Fatal(err)
	}
	wantDep := func(t2 *Task, name string) {
		t.Helper()
		deps := t2.Deps()
		if len(deps) != 1 || deps[0] != producer {
			t.Fatalf("%s deps = %v, want exactly the producer", name, deps)
		}
	}
	wantDep(reader, "reader")
	wantDep(explicit, "explicit")
}

// Property: a random DAG submitted as one batch executes every task exactly
// once, in dependency order, on every real-engine scheduler. Each kernel
// asserts its dependencies already completed before it starts — a dispatcher
// that released a task early, lost one, or double-ran one fails here, and the
// run doubles as a -race exercise of the batched push paths.
func TestQuickRealBatchExactlyOnceOrdered(t *testing.T) {
	for _, sched := range []string{"eager", "ws", "dmda"} {
		for _, seed := range []int64{1, 2, 3} {
			var mu sync.Mutex
			counts := map[*Task]int{}
			done := map[*Task]*atomic.Bool{}
			violations := atomic.Int64{}
			cl, err := NewCodelet("batch", Impl{Arch: "x86", Func: func(tc *TaskContext) error {
				for _, dep := range tc.Task.deps {
					if !done[dep].Load() {
						violations.Add(1)
					}
				}
				time.Sleep(100 * time.Microsecond)
				mu.Lock()
				counts[tc.Task]++
				mu.Unlock()
				done[tc.Task].Store(true)
				return nil
			}})
			if err != nil {
				t.Fatal(err)
			}
			rt, err := New(Config{
				Platform:  cpuPlatform(t, 4),
				Mode:      Real,
				Scheduler: sched,
				Workers:   4,
			})
			if err != nil {
				t.Fatal(err)
			}
			batch := buildRandomDAGTasks(rt, cl, seed, 4, 6)
			if err := rt.SubmitBatch(batch); err != nil {
				t.Fatal(err)
			}
			for _, task := range batch {
				done[task] = &atomic.Bool{}
			}
			rep, err := rt.Run()
			if err != nil {
				t.Fatalf("%s seed %d: %v", sched, seed, err)
			}
			if rep.Tasks != len(batch) {
				t.Fatalf("%s seed %d: report says %d tasks, submitted %d", sched, seed, rep.Tasks, len(batch))
			}
			if len(counts) != len(batch) {
				t.Fatalf("%s seed %d: %d distinct tasks executed, want %d", sched, seed, len(counts), len(batch))
			}
			for task, n := range counts {
				if n != 1 {
					t.Errorf("%s seed %d: task %d executed %d times", sched, seed, task.ID(), n)
				}
			}
			if v := violations.Load(); v != 0 {
				t.Errorf("%s seed %d: %d tasks started before a dependency finished", sched, seed, v)
			}
		}
	}
}
