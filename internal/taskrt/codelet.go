package taskrt

import (
	"fmt"
	"sync/atomic"
)

// TaskContext is handed to real-mode implementation functions.
type TaskContext struct {
	// WorkerID identifies the executing worker.
	WorkerID int
	// Arch is the architecture tag of the chosen implementation.
	Arch string
	// Data holds the payloads of the task's accesses, in access order.
	Data []any
	// Task is the executing task (labels, flops, accesses).
	Task *Task
}

// Payload returns the i-th access payload.
func (tc *TaskContext) Payload(i int) any { return tc.Data[i] }

// Impl is one architecture-specific implementation of a codelet, analogous
// to StarPU's cpu_func/cuda_func fields and to the paper's task
// implementation variants.
type Impl struct {
	// Arch is the PDL ARCHITECTURE tag of units that can run this
	// implementation ("x86", "gpu", "spe", ...).
	Arch string
	// Func is the real-mode kernel. It may be nil for implementations that
	// exist only as simulated variants (e.g. a gpu kernel on a machine
	// without GPUs); such implementations are skipped by the real engine.
	Func func(*TaskContext) error
	// SpeedFactor optionally scales the architecture's calibrated rate for
	// this codelet (1.0 when zero): some kernels reach a different fraction
	// of peak than DGEMM.
	SpeedFactor float64
}

// Codelet is a multi-variant computational kernel: the runtime-facing
// equivalent of a Cascabel task interface with its implementation variants.
type Codelet struct {
	Name  string
	Impls []Impl
}

// NewCodelet builds a codelet from implementations.
func NewCodelet(name string, impls ...Impl) (*Codelet, error) {
	if name == "" {
		return nil, fmt.Errorf("taskrt: codelet without name")
	}
	if len(impls) == 0 {
		return nil, fmt.Errorf("taskrt: codelet %q needs at least one implementation", name)
	}
	seen := map[string]bool{}
	for _, im := range impls {
		if im.Arch == "" {
			return nil, fmt.Errorf("taskrt: codelet %q has implementation without arch", name)
		}
		if seen[im.Arch] {
			return nil, fmt.Errorf("taskrt: codelet %q has duplicate implementation for %q", name, im.Arch)
		}
		seen[im.Arch] = true
	}
	return &Codelet{Name: name, Impls: impls}, nil
}

// ImplFor returns the implementation for an architecture tag, or nil.
func (c *Codelet) ImplFor(arch string) *Impl {
	for i := range c.Impls {
		if c.Impls[i].Arch == arch {
			return &c.Impls[i]
		}
	}
	return nil
}

// Archs returns the architecture tags the codelet supports.
func (c *Codelet) Archs() []string {
	out := make([]string, len(c.Impls))
	for i, im := range c.Impls {
		out[i] = im.Arch
	}
	return out
}

// Handle names a datum managed by the runtime: its size drives transfer
// costs in sim mode, its payload is what real-mode kernels operate on, and
// its home node is where the datum initially lives.
type Handle struct {
	id      int
	Name    string
	Bytes   int64
	Payload any
	home    int

	// resident is a bitmask of the memory nodes (platform master indices)
	// currently holding a valid copy, maintained by the data-aware dmda
	// dispatcher. Zero is the unset state and is read as 1<<home. A write
	// collapses the mask to the writer's node; a placement sets the chosen
	// node's bit ahead of dequeue (the prefetch hint).
	resident atomic.Uint64
}

// ID returns the registration-order id of the handle, stable for the life
// of the runtime — the key external engines (the cluster master) use to name
// the datum on the wire.
func (h *Handle) ID() int { return h.id }

// residentMask returns the effective residency bitmask (home when unset).
func (h *Handle) residentMask() uint64 {
	if m := h.resident.Load(); m != 0 {
		return m
	}
	return 1 << uint(h.home%maxNodes)
}

// markResident sets node's residency bit, reporting whether it was newly
// set — i.e. whether this placement implies a transfer worth prefetching.
func (h *Handle) markResident(node int) bool {
	bit := uint64(1) << uint(node)
	for {
		old := h.resident.Load()
		cur := old
		if cur == 0 {
			cur = 1 << uint(h.home%maxNodes)
		}
		next := cur | bit
		if next == cur && old != 0 {
			return false
		}
		if h.resident.CompareAndSwap(old, next) {
			return cur&bit == 0
		}
	}
}

// setResidentOnly collapses residency to a single node (after a write).
func (h *Handle) setResidentOnly(node int) {
	h.resident.Store(1 << uint(node))
}

// NewHandle registers a datum with the runtime. bytes must be non-negative;
// home is the memory node where the datum initially resides (0 = host RAM).
func (rt *Runtime) NewHandle(name string, bytes int64, payload any) *Handle {
	h := &Handle{id: len(rt.handles), Name: name, Bytes: bytes, Payload: payload}
	rt.handles = append(rt.handles, h)
	return h
}

// Access pairs a handle with its access mode.
type Access struct {
	Handle *Handle
	Mode   AccessMode
}

// R is shorthand for a read access.
func R(h *Handle) Access { return Access{Handle: h, Mode: Read} }

// W is shorthand for a write access.
func W(h *Handle) Access { return Access{Handle: h, Mode: Write} }

// RW is shorthand for a readwrite access.
func RW(h *Handle) Access { return Access{Handle: h, Mode: ReadWrite} }

// Task is one unit of work: a codelet invocation over concrete handles.
type Task struct {
	Codelet  *Codelet
	Accesses []Access
	// Flops is the work size used by cost models (e.g. 2·m·n·k for GEMM
	// tiles). Zero-flop tasks only pay launch overhead in sim mode.
	Flops float64
	// Priority orders tasks within some schedulers (higher first).
	Priority int
	// Label annotates traces.
	Label string
	// Where restricts simulated placement to the named PU ids (an entry
	// also matches its quantity-expanded instances, e.g. "host" matches
	// "host.3"). Empty means any compatible unit. This realises the paper's
	// execution groups: "denoting sub-parts of a heterogeneous platform
	// where specific tasks are intended to execute" (Section IV-B). The
	// real engine's anonymous worker pool ignores it.
	Where []string
	// After adds explicit control dependencies (StarPU's tag dependencies)
	// on top of the implicit data-driven ones. Listed tasks must already be
	// submitted to the same runtime.
	After []*Task

	id         int
	deps       []*Task
	dependents []*Task
	// attempt counts failed attempts so far: the failure slow path stores,
	// the next executing worker loads it to stamp its trace spans.
	attempt atomic.Int32
	// estNanos is the execution+transfer prediction the dmda dispatcher
	// charged to a worker's backlog when it placed this task; released by
	// finished. Guarded by the owning queue's hand-off, never concurrent.
	estNanos int64
	// pred caches the dmda perfmodel lookups for this task's codelet,
	// assigned once at dispatcher construction so placement is map-free.
	pred *predEntry
}

// Deps returns the tasks this task waits for (for tests and tooling).
func (t *Task) Deps() []*Task { return t.deps }

// Dependents returns the tasks waiting on this task (the reverse dependency
// edges), for external engines executing a Graph().
func (t *Task) Dependents() []*Task { return t.dependents }

// ID returns the submission-order id.
func (t *Task) ID() int { return t.id }
