package taskrt

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCreditSemBatchReleaseWakesAllParked parks a full complement of workers
// on an empty semaphore, then releases their credits as one batch: every
// parked worker must wake, and the credit count must balance exactly —
// the invariant the dispatcher's batched push path depends on.
func TestCreditSemBatchReleaseWakesAllParked(t *testing.T) {
	const workers = 8
	s := newCreditSem(workers + workers)
	done := make(chan struct{})
	abort := make(chan struct{})

	var acquired atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	started := make(chan struct{}, workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			started <- struct{}{}
			if s.acquire(done, abort) {
				acquired.Add(1)
			}
		}()
	}
	for i := 0; i < workers; i++ {
		<-started
	}
	// Give every worker time to reach the parked state (credits negative).
	deadline := time.Now().Add(time.Second)
	for s.credits.Load() != -workers && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := s.credits.Load(); got != -workers {
		t.Fatalf("expected %d parked workers (credits=-%d), credits=%d", workers, workers, got)
	}

	// One batch release must hand exactly `workers` wake tokens.
	s.release(workers)
	wg.Wait()
	if got := acquired.Load(); got != workers {
		t.Fatalf("acquired %d credits, want %d", got, workers)
	}
	if got := s.credits.Load(); got != 0 {
		t.Fatalf("credits not balanced after batch release: %d", got)
	}
}

// TestCreditSemParkWakeStress races batch releases against workers that
// repeatedly park: every released credit must be consumed exactly once (no
// lost wakes, no double grants), and the loop must terminate — the park/wake
// ordering contract under -race.
func TestCreditSemParkWakeStress(t *testing.T) {
	const (
		workers = 6
		batches = 200
		batchN  = 5
	)
	total := batches * batchN
	s := newCreditSem(workers + total)
	done := make(chan struct{})
	abort := make(chan struct{})

	var acquired atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for {
				if !s.acquire(done, abort) {
					return
				}
				acquired.Add(1)
			}
		}()
	}

	// Concurrent producers, each releasing batches while consumers park and
	// re-park between acquisitions.
	var prod sync.WaitGroup
	const producers = 4
	prod.Add(producers)
	per := batches / producers
	for p := 0; p < producers; p++ {
		go func() {
			defer prod.Done()
			for b := 0; b < per; b++ {
				s.release(batchN)
			}
		}()
	}
	prod.Wait()

	deadline := time.Now().Add(5 * time.Second)
	for acquired.Load() != int64(total) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := acquired.Load(); got != int64(total) {
		t.Fatalf("acquired %d credits, want %d (lost wake?)", got, total)
	}
	close(done)
	wg.Wait()
	// All credits consumed: count reflects only the parked-worker debt that
	// done released, never a positive leftover balance.
	if got := s.credits.Load(); got > 0 {
		t.Fatalf("positive credit balance %d after all acquisitions", got)
	}
}

// TestCreditSemAbortUnparksWorkers verifies parked workers exit promptly on
// abort without consuming credits.
func TestCreditSemAbortUnparksWorkers(t *testing.T) {
	s := newCreditSem(4)
	done := make(chan struct{})
	abort := make(chan struct{})
	res := make(chan bool, 3)
	for i := 0; i < 3; i++ {
		go func() { res <- s.acquire(done, abort) }()
	}
	time.Sleep(10 * time.Millisecond)
	close(abort)
	for i := 0; i < 3; i++ {
		select {
		case ok := <-res:
			if ok {
				t.Fatalf("acquire returned true on abort")
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("parked worker did not exit on abort")
		}
	}
}
