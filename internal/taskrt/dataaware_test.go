package taskrt

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/perfmodel"
	"repro/internal/trace"
)

// twoNodePlatform declares two single-core masters of the same architecture
// joined by a deliberately slow PCIe link, so the only thing distinguishing
// the workers under dmda is where the data lives.
func twoNodePlatform(t testing.TB) *core.Platform {
	t.Helper()
	pl, err := core.NewBuilder("twonode").
		Master("n0", core.Arch("x86"), core.Qty(1)).
		Master("n1", core.Arch("x86"), core.Qty(1)).
		Link(core.ICTypePCIe, "n0", "n1", core.Bandwidth(0.5), core.Latency(100)).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

// Data-aware dmda on a two-node platform must anchor chains of readwrite
// tasks to the node holding their operand: with equal architectures and
// pre-warmed models the transfer term is the tie-breaker, so the majority of
// placements land data-resident (Transfer == 0 on the Place event), while
// the initial distribution of chains across nodes pays a modelled transfer
// that must be recorded on the trace.
func TestRealDmdaDataResidentPlacement(t *testing.T) {
	// One chain handle is 1 MiB: over the declared 0.5 GB/s + 100 µs link
	// that models to ~2 ms, comparable to one task's ~2 ms predicted compute.
	// Seeding the four chains therefore spreads them across both nodes (the
	// third chain's modelled move is cheaper than waiting behind node 0's
	// backlog), after which residency anchors every later placement.
	const (
		chains  = 4
		length  = 6
		handleB = 1 << 20
	)
	var mu sync.Mutex
	ran := 0
	cl, err := NewCodelet("anchor", Impl{Arch: "x86", Func: func(tc *TaskContext) error {
		time.Sleep(200 * time.Microsecond)
		mu.Lock()
		ran++
		mu.Unlock()
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	models := perfmodel.NewStore()
	for _, sz := range []float64{1e8, 2e8, 4e8} {
		if err := models.Model("anchor", "x86").Record(sz, sz/1e12); err != nil {
			t.Fatal(err)
		}
	}
	tr := trace.New()
	rt, err := New(Config{
		Platform:  twoNodePlatform(t),
		Mode:      Real,
		Scheduler: "dmda",
		Workers:   2,
		Models:    models,
		Trace:     tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]*Task, 0, chains*length)
	for c := 0; c < chains; c++ {
		h := rt.NewHandle("chain", handleB, nil)
		for i := 0; i < length; i++ {
			batch = append(batch, &Task{
				Codelet:  cl,
				Accesses: []Access{RW(h)},
				Flops:    2e9,
			})
		}
	}
	if err := rt.SubmitBatch(batch); err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tasks != len(batch) || ran != len(batch) {
		t.Fatalf("report %d tasks, %d kernels ran, submitted %d", rep.Tasks, ran, len(batch))
	}
	placed, resident, moved := 0, 0, 0
	for _, e := range tr.Events() {
		if e.Kind != trace.Place {
			continue
		}
		placed++
		if e.Transfer == 0 {
			resident++
		} else {
			moved++
		}
	}
	if placed != len(batch) {
		t.Fatalf("%d Place events, want one per task (%d)", placed, len(batch))
	}
	// Chains serialise on their handle, so after the first hop every
	// placement should find the operand already resident. Steals can
	// re-anchor a chain mid-run, so allow a minority of paid moves.
	if resident*3 < placed*2 {
		t.Errorf("data-resident placements = %d/%d, want at least two thirds", resident, placed)
	}
	// All chain data starts on node 0; spreading chains across both nodes
	// must charge (and trace) at least one modelled transfer.
	if moved == 0 {
		t.Error("no Place event carries a transfer charge; the interconnect model never engaged")
	}
}

// Without declared interconnects the dispatcher must stay transfer-blind:
// every placement scores with a zero transfer term and no Place event carries
// a transfer charge.
func TestRealDmdaNoRoutesStaysTransferBlind(t *testing.T) {
	cl, err := NewCodelet("blind", Impl{Arch: "x86", Func: func(*TaskContext) error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New()
	rt, err := New(Config{
		Platform:  cpuPlatform(t, 2),
		Mode:      Real,
		Scheduler: "dmda",
		Workers:   2,
		Trace:     tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := rt.NewHandle("h", 8<<20, nil)
	for i := 0; i < 8; i++ {
		if err := rt.Submit(&Task{Codelet: cl, Accesses: []Access{RW(h)}, Flops: 1e8}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	for _, e := range tr.Events() {
		if e.Kind == trace.Place && e.Transfer != 0 {
			t.Fatalf("Place event carries transfer %v on a platform with no declared routes", e.Transfer)
		}
	}
}

// The untraced dmda hot path — push (place), take, finished — must not
// allocate in steady state: the estimate snapshot is cached, choose scores
// into a stack array, and no trace instants or reason strings are built when
// tracing is off.
func TestDmdaHotPathNoAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skewed by the race detector")
	}
	cl, err := NewCodelet("alloc", Impl{Arch: "x86", Func: func(*TaskContext) error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	models := perfmodel.NewStore()
	if err := models.Model("alloc", "x86").Record(1e9, 1e-3); err != nil {
		t.Fatal(err)
	}
	h := &Handle{Name: "h", Bytes: 1 << 20}
	task := &Task{Codelet: cl, Accesses: []Access{RW(h)}, Flops: 1e9}
	costs := [][]xferCost{
		{{}, {latNanos: 1e4, nanosPerByte: 0.2}},
		{{latNanos: 1e4, nanosPerByte: 0.2}, {}},
	}
	d := newDmdaDispatcher([]string{"x86", "x86"}, []int{0, 1}, costs, []*Task{task}, models)
	abort := make(chan struct{})
	allocs := testing.AllocsPerRun(200, func() {
		d.push(-1, task)
		if !d.acquire(nil, nil) {
			t.Fatal("acquire after push must succeed")
		}
		got, _ := d.take(0, abort)
		if got == nil {
			t.Fatal("take returned nil with a task queued")
		}
		d.finished(0, got, time.Millisecond, true)
	})
	if allocs != 0 {
		t.Fatalf("dmda push/take/finished allocates %.1f objects per task, want 0", allocs)
	}
}
