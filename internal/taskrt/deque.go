package taskrt

import "sync/atomic"

// wsDeque is a fixed-capacity Chase-Lev work-stealing deque: the owning
// worker pushes and pops at the bottom (LIFO, cache-hot depth-first order)
// while thieves steal from the top (FIFO, oldest work first). The only
// synchronisation is one CAS on the top index per steal — and per pop of the
// final element, where owner and thieves race.
//
// The capacity is fixed at construction. The real engine sizes every deque
// for the entire task graph and a task occupies at most one queue slot at a
// time, so bottom-top can never exceed the capacity and the growth protocol
// (and its subtle buffer-swap memory ordering) of the original algorithm is
// unnecessary. Go's atomics are sequentially consistent, which is stronger
// than the fences the published algorithm requires.
type wsDeque struct {
	bottom atomic.Int64 // next push slot; written by the owner only
	top    atomic.Int64 // next steal slot; CAS-advanced by anyone
	mask   int64
	buf    []atomic.Pointer[Task]
}

// newWSDeque returns a deque that can hold at least capacity tasks. One
// spare slot guards the wrap-around aliasing case (bottom-top == bufsize).
func newWSDeque(capacity int) *wsDeque {
	n := int64(1)
	for n < int64(capacity)+1 {
		n <<= 1
	}
	return &wsDeque{mask: n - 1, buf: make([]atomic.Pointer[Task], n)}
}

// push appends t at the bottom. Owner only.
func (d *wsDeque) push(t *Task) {
	b := d.bottom.Load()
	d.buf[b&d.mask].Store(t)
	d.bottom.Store(b + 1)
}

// pop removes the most recently pushed task, or returns nil when the deque
// is empty or a thief won the race for the last element. Owner only.
func (d *wsDeque) pop() *Task {
	b := d.bottom.Load() - 1
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: undo the reservation.
		d.bottom.Store(b + 1)
		return nil
	}
	task := d.buf[b&d.mask].Load()
	if t == b {
		// Last element: race thieves for it via the top index.
		if !d.top.CompareAndSwap(t, t+1) {
			task = nil // a thief got there first
		}
		d.bottom.Store(b + 1)
	}
	return task
}

// size approximates the queued-task count from a racy snapshot of the two
// indices — good enough for the metrics sampler, never for control flow. It
// can transiently read one high (owner mid-pop) and is clamped at zero.
func (d *wsDeque) size() int {
	if n := d.bottom.Load() - d.top.Load(); n > 0 {
		return int(n)
	}
	return 0
}

// steal removes the oldest task, or returns nil when the deque is empty or
// another thief (or the owner, on the last element) won the race. Safe from
// any goroutine.
func (d *wsDeque) steal() *Task {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return nil
	}
	task := d.buf[t&d.mask].Load()
	if !d.top.CompareAndSwap(t, t+1) {
		return nil
	}
	return task
}
