package taskrt

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestWSDequeOrdering(t *testing.T) {
	d := newWSDeque(8)
	tasks := make([]*Task, 5)
	for i := range tasks {
		tasks[i] = &Task{id: i}
		d.push(tasks[i])
	}
	// Owner pops LIFO: most recent first.
	if got := d.pop(); got != tasks[4] {
		t.Fatalf("pop = task %d, want 4", got.id)
	}
	// Thief steals FIFO: oldest first.
	if got := d.steal(); got != tasks[0] {
		t.Fatalf("steal = task %d, want 0", got.id)
	}
	if got := d.steal(); got != tasks[1] {
		t.Fatalf("steal = task %d, want 1", got.id)
	}
	if got := d.pop(); got != tasks[3] {
		t.Fatalf("pop = task %d, want 3", got.id)
	}
	if got := d.pop(); got != tasks[2] {
		t.Fatalf("pop = task %d, want 2", got.id)
	}
	if d.pop() != nil || d.steal() != nil {
		t.Fatal("drained deque must return nil")
	}
}

// TestWSDequeExactlyOnceUnderContention hammers one deque with a popping
// owner and several stealing thieves: every pushed task must come out exactly
// once. Run under -race this also checks the memory ordering of the
// push/pop/steal protocol.
func TestWSDequeExactlyOnceUnderContention(t *testing.T) {
	const tasks = 2000
	const thieves = 3
	d := newWSDeque(tasks)
	seen := make([]atomic.Int32, tasks)
	var got atomic.Int64
	var wg sync.WaitGroup

	record := func(task *Task) {
		seen[task.id].Add(1)
		got.Add(1)
	}
	wg.Add(1 + thieves)
	go func() { // owner: interleave pushes and pops
		defer wg.Done()
		for i := 0; i < tasks; i++ {
			d.push(&Task{id: i})
			if i%3 == 0 {
				if task := d.pop(); task != nil {
					record(task)
				}
			}
		}
		for {
			task := d.pop()
			if task == nil {
				break
			}
			record(task)
		}
	}()
	for th := 0; th < thieves; th++ {
		go func() {
			defer wg.Done()
			for got.Load() < tasks {
				if task := d.steal(); task != nil {
					record(task)
				}
			}
		}()
	}
	wg.Wait()
	// The owner drained its deque and thieves only stop once the global count
	// reaches the total; a lost task would deadlock wg.Wait before this point.
	for i := range seen {
		if n := seen[i].Load(); n != 1 {
			t.Fatalf("task %d surfaced %d times", i, n)
		}
	}
}

// TestStealDispatcherCountsSteals drives the dispatcher directly: a task
// parked on worker 0's deque taken by worker 1 must be counted as worker 1's
// steal.
func TestStealDispatcherCountsSteals(t *testing.T) {
	d := newStealDispatcher(2, 4)
	task := &Task{id: 7}
	d.push(0, task)
	if !d.acquire(nil, nil) {
		t.Fatal("acquire after push must succeed")
	}
	abort := make(chan struct{})
	got, victim := d.take(1, abort)
	if got != task {
		t.Fatalf("take(1) = %v, want the parked task", got)
	}
	if victim != 0 {
		t.Fatalf("take(1) victim = %d, want 0", victim)
	}
	if d.stolen(1) != 1 {
		t.Fatalf("stolen(1) = %d, want 1", d.stolen(1))
	}
	if d.stolen(0) != 0 {
		t.Fatalf("stolen(0) = %d, want 0", d.stolen(0))
	}
	// Injector pushes (from < 0) are not steals.
	d.push(-1, task)
	if !d.acquire(nil, nil) {
		t.Fatal("acquire after injector push must succeed")
	}
	got, victim = d.take(1, abort)
	if got != task {
		t.Fatal("injected task not delivered")
	}
	if victim != -1 {
		t.Fatalf("injector take reported victim %d, want -1", victim)
	}
	if d.stolen(1) != 1 {
		t.Fatalf("injector take counted as steal: stolen(1) = %d", d.stolen(1))
	}
}
