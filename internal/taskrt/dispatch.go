package taskrt

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/perfmodel"
)

// creditSem is the counting semaphore behind every dispatcher's credit
// discipline. The old implementation deposited one token on a buffered
// channel per push and received one per take — two channel operations on
// every task even when the consumer was already running. Here the count
// lives in an atomic: release adds, acquire subtracts, and the wake channel
// is only touched when a worker actually has to sleep (credits went
// negative). In steady state — workers busy, queues non-empty — push and
// take cost one atomic add each and no channel traffic, and releasing a
// batch of n credits is a single add.
//
// Invariant: credits counts available tasks minus waiting workers. A
// negative value is the number of parked (or about-to-park) workers, so
// release hands exactly that many wake tokens.
type creditSem struct {
	credits atomic.Int64
	wake    chan struct{} // struct{} buffer: capacity costs no memory
}

func newCreditSem(capacity int) *creditSem {
	// Capacity bounds simultaneous sleepers + pending wakes: workers plus
	// every task that could be released while all workers are parked.
	return &creditSem{wake: make(chan struct{}, capacity)}
}

// release deposits n credits, waking as many parked workers as the deposit
// covers.
func (s *creditSem) release(n int) {
	if n <= 0 {
		return
	}
	before := s.credits.Add(int64(n)) - int64(n)
	if before < 0 {
		wake := int64(n)
		if -before < wake {
			wake = -before
		}
		for i := int64(0); i < wake; i++ {
			s.wake <- struct{}{}
		}
	}
}

// acquire obtains one credit, blocking until a task is available. It
// returns false when done or abort closes first — the run is over.
func (s *creditSem) acquire(done, abort <-chan struct{}) bool {
	if s.credits.Add(-1) >= 0 {
		return true // fast path: a task was already available
	}
	select {
	case <-s.wake:
		return true
	case <-done:
		return false
	case <-abort:
		return false
	}
}

// dispatcher abstracts how ready tasks reach real-engine workers. All
// implementations share a credit discipline: push enqueues the task and then
// releases one credit on the semaphore; a worker first acquires a credit (or
// learns the run is over) and only then calls take, which is guaranteed to
// find a task somewhere. The invariant "queued tasks >= outstanding acquired
// credits" holds because every push adds exactly one task and one credit, and
// every acquired credit removes exactly one task. pushBatch amortises the
// synchronisation: one queue pass and one semaphore release for the whole
// batch.
//
//   - chanDispatcher is the single shared FIFO the engine used historically
//     (StarPU's eager central queue): one buffered channel every worker
//     drains, selected by Scheduler "eager". It is kept both as the
//     behavioural baseline and so the bench pipeline can measure the
//     dispatch-overhead delta against the stealing engine in one binary.
//   - stealDispatcher gives each worker a Chase-Lev deque plus one shared
//     injector for pushes from outside the pool. A worker that completes a
//     task pushes newly-ready dependents onto its own deque and pops them
//     back LIFO — the locality hint: dependents run on the worker that just
//     produced their inputs, with their data still cache-hot. Idle workers
//     first drain the injector, then steal FIFO from victims.
//   - dmdaDispatcher routes every push to the worker with the earliest
//     model-predicted finish time (StarPU's dmda policy on the real engine),
//     charging interconnect-modelled data-transfer time for handles that are
//     not resident on the candidate's memory node. See the type comment.
type dispatcher interface {
	// push makes t runnable. from identifies the pushing worker so the task
	// can land on its own deque; from < 0 marks pushes from outside the pool
	// (initial seeding, requeue timers), which go to the shared injector.
	push(from int, t *Task)
	// pushBatch makes every task in ts runnable with one synchronisation
	// round: tasks are enqueued first, then the batch's credits are released
	// together. The slice is not retained — callers may reuse it.
	pushBatch(from int, ts []*Task)
	// acquire obtains one task credit, blocking until one is available or
	// the run ends (done) or aborts. After a true return, take is guaranteed
	// to find a task.
	acquire(done, abort <-chan struct{}) bool
	// take returns a task for worker w after a credit was acquired. It
	// returns nil with victim -1 when abort closes mid-sweep, and nil with
	// victim takeRetry when the dispatcher handed the worker's credit back
	// (every available task is better left where it is) — the caller must
	// loop to acquire. Otherwise the second result is the victim worker
	// the task was stolen from, or -1 when it came from the worker's own
	// queue or the shared pool — steal provenance for traces.
	take(w int, abort <-chan struct{}) (*Task, int)
	// stolen reports how many tasks worker w has obtained by stealing.
	stolen(w int) int
	// depth approximates worker w's queue length (w < 0: the shared queue).
	// A racy snapshot for the metrics sampler, never for control flow.
	depth(w int) int
	// finished tells the dispatcher worker w is done with t (success or
	// failure), releasing any outstanding-work accounting. ran is false when
	// the attempt never executed the kernel (injected fault at launch), so
	// observed-time statistics stay honest.
	finished(w int, t *Task, d time.Duration, ran bool)
}

// takeRetry is the sentinel victim index a dispatcher's take returns (with a
// nil task) after handing the worker's credit back to the semaphore: the
// worker must loop through acquire rather than treat the nil as an abort.
const takeRetry = -2

// offlineAware is implemented by dispatchers that route at push time and
// therefore must know which workers the fault-tolerance layer has
// blacklisted. Queues of offline workers stay stealable either way.
type offlineAware interface {
	setOffline(w int, offline bool)
}

// chanDispatcher: the single-channel baseline.
type chanDispatcher struct {
	queue chan *Task
	sem   *creditSem
}

// newChanDispatcher sizes the queue so pushes never block: a task occupies
// at most one slot at a time, even across retries.
func newChanDispatcher(workers, tasks int) *chanDispatcher {
	return &chanDispatcher{
		queue: make(chan *Task, tasks),
		sem:   newCreditSem(workers + tasks),
	}
}

func (d *chanDispatcher) push(from int, t *Task) {
	d.queue <- t
	d.sem.release(1)
}

func (d *chanDispatcher) pushBatch(from int, ts []*Task) {
	for _, t := range ts {
		d.queue <- t
	}
	d.sem.release(len(ts))
}

func (d *chanDispatcher) acquire(done, abort <-chan struct{}) bool {
	return d.sem.acquire(done, abort)
}

func (d *chanDispatcher) take(w int, abort <-chan struct{}) (*Task, int) {
	select {
	case t := <-d.queue:
		return t, -1
	case <-abort:
		return nil, -1
	}
}

func (d *chanDispatcher) stolen(int) int { return 0 }

func (d *chanDispatcher) finished(int, *Task, time.Duration, bool) {}

func (d *chanDispatcher) depth(w int) int {
	if w < 0 {
		return len(d.queue)
	}
	return 0
}

// stealDispatcher: per-worker Chase-Lev deques, a shared injector, and
// per-worker steal counters (owner-written, merged after shutdown).
type stealDispatcher struct {
	deques []*wsDeque
	steals []int64

	injMu sync.Mutex
	inj   []*Task
	sem   *creditSem
}

func newStealDispatcher(workers, tasks int) *stealDispatcher {
	d := &stealDispatcher{
		deques: make([]*wsDeque, workers),
		steals: make([]int64, workers),
		sem:    newCreditSem(workers + tasks),
	}
	for w := range d.deques {
		d.deques[w] = newWSDeque(tasks)
	}
	return d
}

func (d *stealDispatcher) push(from int, t *Task) {
	if from >= 0 {
		d.deques[from].push(t)
	} else {
		d.injMu.Lock()
		d.inj = append(d.inj, t)
		d.injMu.Unlock()
	}
	d.sem.release(1)
}

func (d *stealDispatcher) pushBatch(from int, ts []*Task) {
	if from >= 0 {
		for _, t := range ts {
			d.deques[from].push(t)
		}
	} else {
		d.injMu.Lock()
		d.inj = append(d.inj, ts...)
		d.injMu.Unlock()
	}
	d.sem.release(len(ts))
}

func (d *stealDispatcher) acquire(done, abort <-chan struct{}) bool {
	return d.sem.acquire(done, abort)
}

// popInjector removes the oldest injected task.
func (d *stealDispatcher) popInjector() *Task {
	d.injMu.Lock()
	defer d.injMu.Unlock()
	if len(d.inj) == 0 {
		return nil
	}
	t := d.inj[0]
	d.inj = d.inj[1:]
	return t
}

func (d *stealDispatcher) take(w int, abort <-chan struct{}) (*Task, int) {
	for {
		if t := d.deques[w].pop(); t != nil {
			return t, -1
		}
		if t := d.popInjector(); t != nil {
			return t, -1
		}
		// Steal sweep, starting at the next worker so victims differ across
		// thieves. Blacklisted workers' deques stay stealable, so a dying
		// worker never strands its queued tasks.
		for i := 1; i < len(d.deques); i++ {
			victim := (w + i) % len(d.deques)
			if t := d.deques[victim].steal(); t != nil {
				d.steals[w]++
				return t, victim
			}
		}
		// The credit guarantees a task exists; we only get here on transient
		// races (a concurrent pop/steal between our scans). Yield and rescan
		// unless the run is aborting.
		select {
		case <-abort:
			return nil, -1
		default:
		}
		runtime.Gosched()
	}
}

func (d *stealDispatcher) stolen(w int) int { return int(d.steals[w]) }

func (d *stealDispatcher) finished(int, *Task, time.Duration, bool) {}

func (d *stealDispatcher) depth(w int) int {
	if w >= 0 {
		return d.deques[w].size()
	}
	d.injMu.Lock()
	defer d.injMu.Unlock()
	return len(d.inj)
}

// Placement-decision sources, in falling confidence order. They label the
// taskrt_sched_decisions_total metrics family and the trace.Place events.
const (
	placeModel    = "model"    // perfmodel estimate for the worker's arch
	placeFallback = "fallback" // worker's observed mean task time
	placeCold     = "cold"     // no history anywhere: zero-cost estimate
)

// maxNodes bounds the memory-node count the data-aware machinery handles:
// handle residency is a 64-bit bitmask (one bit per platform master).
// Platforms with more masters than bits fall back to transfer-blind dmda.
const maxNodes = 64

// Interconnects declared without BANDWIDTH/LATENCY properties get the same
// defaults the sim engine assumes (internal/simhw): 5 GiB/s, 10 µs.
const (
	defaultLinkBandwidth = 5 << 30 // bytes/s
	defaultLinkLatencyNS = 10e3    // nanoseconds
)

// xferCost is the modelled cost of moving bytes between two memory nodes:
// total latency plus inverse bandwidth, summed over the PDL-declared route.
type xferCost struct {
	latNanos     float64
	nanosPerByte float64
}

// predSnap caches one (codelet, arch, size) perfmodel estimate together with
// the model version it was computed at. Placement revalidates with two loads
// (version + flops) and recomputes only after a Record bumped the version.
type predSnap struct {
	version int64
	flops   float64
	nanos   int64
	ok      bool
}

// predEntry is the per-codelet estimate cache, indexed by distinct-arch
// slot. It is built once per run (construction walks the task set, the only
// map access on the dmda path) and shared by every task of the codelet, so a
// steady-state placement decision touches no maps and takes no locks.
type predEntry struct {
	models []*perfmodel.Model
	snaps  []atomic.Pointer[predSnap]
}

// dmdaWorker is one worker's routing state under the dmda dispatcher. The
// queue is the same Chase-Lev deque the ws dispatcher uses, with the roles
// flipped: arbitrary producers push at the bottom serialised by pushMu,
// the owner consumes oldest-first through the lock-free top end (steal —
// placement order, matching the EFT accounting), and thieves take the
// newest task at the bottom (pop) under the victim's pushMu. All bottom-end
// operations are mutex-serialised, so the single-owner requirement of the
// Chase-Lev protocol holds; the top end keeps its usual CAS race handling.
type dmdaWorker struct {
	pushMu sync.Mutex
	q      *wsDeque

	arch    string
	archIdx int // index into the dispatcher's distinct-arch tables
	node    int // memory node (platform master index) this worker lives on
	offline atomic.Bool
	// outstanding is the predicted nanoseconds of work queued on or running
	// on this worker — the queued-work term of the EFT score.
	outstanding atomic.Int64
	// busyNanos/completed feed the observed-mean fallback estimate.
	busyNanos atomic.Int64
	completed atomic.Int64
	steals    atomic.Int64

	// stallDone/stallSince arm the steal-force valve. They track, across
	// take calls, when this worker's sweeps started being declined with no
	// pool-wide completion progress since. Owner-goroutine state: no
	// atomics needed.
	stallDone  int64
	stallSince time.Time
}

// dmdaDispatcher implements StarPU's dmda (deque model, data aware) policy
// on the real engine: push scores every online worker with an expected
// finish time — outstanding backlog, plus the predicted execution time of
// the task on that worker's architecture, plus the modelled time to move
// any non-resident read operands onto that worker's memory node — and
// routes the task to the minimum. Residency is tracked per handle as a
// bitmask of memory nodes: a write moves the handle to the writer's node, a
// placement marks the chosen node resident ahead of dequeue (the prefetch
// hint — later siblings reading the same handle see the transfer already
// paid and co-locate). Prediction sources fall back in order: the cached
// perfmodel estimate for (codelet, arch), the worker's observed mean task
// time, then the pool-wide observed mean while the worker is cold — cold
// workers compete on backlog like everyone else instead of taking absolute
// priority, which is what previously sent every homogeneous placement to
// the same few workers and forced a steal for the rest. Workers whose own
// queue runs dry steal from victims, so a misprediction costs a steal (and
// its transfer charge) rather than idle time.
type dmdaDispatcher struct {
	workers []dmdaWorker
	sem     *creditSem
	rr      atomic.Int64 // rotation cursor: varies tie-breaks across pushes

	// Data-awareness tables, fixed at construction. costs[i][j] models a
	// transfer from node i to node j; dataAware is false when the platform
	// declares no routes (or has >maxNodes masters), which zeroes the
	// transfer term and skips residency upkeep entirely.
	dataAware bool
	nodes     int
	costs     [][]xferCost

	// Pool-wide observed totals for the cold estimate.
	totBusy      atomic.Int64
	totCompleted atomic.Int64

	// Cached decision counters (taskrt_sched_decisions_total{policy="dmda"}).
	decModel, decFallback, decCold *metrics.Counter
	prefetches                     *metrics.Counter
	xferSeconds                    *metrics.Counter
	// onPlace, when non-nil, observes every placement (trace recording).
	// xferNanos is the modelled transfer time folded into the decision.
	onPlace func(w int, t *Task, reason string, xferNanos int64)
}

// newDmdaDispatcher builds the routing state: per-worker deques sized for
// the whole task set, the distinct-arch table, the node transfer-cost
// matrix, and the per-codelet estimate caches (tasks' pred fields are
// assigned here — the only map lookups on the dmda path happen now).
func newDmdaDispatcher(archs []string, nodes []int, costs [][]xferCost, tasks []*Task, models *perfmodel.Store) *dmdaDispatcher {
	d := &dmdaDispatcher{
		workers:     make([]dmdaWorker, len(archs)),
		sem:         newCreditSem(len(archs) + len(tasks)),
		nodes:       len(costs),
		costs:       costs,
		decModel:    rtm.schedDecisions.With("dmda", placeModel),
		decFallback: rtm.schedDecisions.With("dmda", placeFallback),
		decCold:     rtm.schedDecisions.With("dmda", placeCold),
		prefetches:  rtm.prefetches,
		xferSeconds: rtm.schedTransfer,
	}
	for i := range costs {
		for j := range costs[i] {
			if i != j && (costs[i][j].latNanos > 0 || costs[i][j].nanosPerByte > 0) {
				d.dataAware = true
			}
		}
	}
	if d.nodes > maxNodes {
		d.dataAware = false
	}
	distinct := make([]string, 0, 4)
	slot := make(map[string]int, 4)
	for w := range d.workers {
		wk := &d.workers[w]
		wk.arch = archs[w]
		if w < len(nodes) {
			wk.node = nodes[w]
		}
		ai, ok := slot[archs[w]]
		if !ok {
			ai = len(distinct)
			slot[archs[w]] = ai
			distinct = append(distinct, archs[w])
		}
		wk.archIdx = ai
		wk.q = newWSDeque(len(tasks))
		wk.stallDone = -1
	}
	byCodelet := make(map[*Codelet]*predEntry)
	for _, t := range tasks {
		if t.Flops <= 0 || models == nil {
			continue
		}
		pe := byCodelet[t.Codelet]
		if pe == nil {
			pe = &predEntry{
				models: make([]*perfmodel.Model, len(distinct)),
				snaps:  make([]atomic.Pointer[predSnap], len(distinct)),
			}
			for ai, arch := range distinct {
				pe.models[ai] = models.Model(t.Codelet.Name, arch)
			}
			byCodelet[t.Codelet] = pe
		}
		t.pred = pe
	}
	return d
}

// estimate predicts t's execution time on worker w in nanoseconds, tagged
// with the prediction source. The model path is lock-free in steady state:
// the cached snapshot is valid until a Record bumps the model version.
func (d *dmdaDispatcher) estimate(t *Task, w int) (nanos int64, source string) {
	wk := &d.workers[w]
	if pe := t.pred; pe != nil {
		ai := wk.archIdx
		v := pe.models[ai].Version()
		s := pe.snaps[ai].Load()
		if s == nil || s.version != v || s.flops != t.Flops {
			sec, ok := pe.models[ai].Estimate(t.Flops)
			s = &predSnap{version: v, flops: t.Flops, nanos: int64(sec * 1e9), ok: ok}
			pe.snaps[ai].Store(s)
		}
		if s.ok {
			return s.nanos, placeModel
		}
	}
	if n := wk.completed.Load(); n > 0 {
		return wk.busyNanos.Load() / n, placeFallback
	}
	// Cold worker: charge the pool-wide observed mean so untried workers
	// still accumulate backlog instead of becoming zero-cost magnets.
	if n := d.totCompleted.Load(); n > 0 {
		return d.totBusy.Load() / n, placeCold
	}
	return 0, placeCold
}

// transferToNode models the nanoseconds needed to make t's read operands
// resident on the given memory node: for each handle not already resident
// there, the cheapest declared route from any node that holds it.
func (d *dmdaDispatcher) transferToNode(t *Task, node int) int64 {
	var total int64
	for _, a := range t.Accesses {
		h := a.Handle
		if !a.Mode.Reads() || h.Bytes <= 0 {
			continue
		}
		mask := h.residentMask()
		if mask&(1<<uint(node)) != 0 {
			continue
		}
		best := int64(-1)
		for src := 0; src < d.nodes; src++ {
			if mask&(1<<uint(src)) == 0 {
				continue
			}
			c := &d.costs[src][node]
			cost := int64(c.latNanos + c.nanosPerByte*float64(h.Bytes))
			if best < 0 || cost < best {
				best = cost
			}
		}
		if best > 0 {
			total += best
		}
	}
	return total
}

// choose scores the online workers and returns the winner, the decision
// source, the predicted nanoseconds charged to its backlog (execution +
// transfer), and the transfer component alone. It allocates nothing: the
// per-node transfer costs live in a stack array and the estimate cache
// replaces the old per-worker map-and-lock lookups.
func (d *dmdaDispatcher) choose(t *Task) (w int, source string, charge, xfer int64) {
	var xferByNode [maxNodes]int64
	dataAware := d.dataAware && len(t.Accesses) > 0
	if dataAware {
		for n := 0; n < d.nodes; n++ {
			xferByNode[n] = d.transferToNode(t, n)
		}
	}
	nw := len(d.workers)
	// Rotate the scan start so equal-EFT candidates spread instead of
	// piling onto the lowest-indexed worker.
	start := int(d.rr.Add(1)-1) % nw
	best, bestEFT, bestEst, bestXfer := -1, int64(0), int64(0), int64(0)
	bestSrc := placeCold
	for i := 0; i < nw; i++ {
		wi := start + i
		if wi >= nw {
			wi -= nw
		}
		wk := &d.workers[wi]
		if wk.offline.Load() {
			continue
		}
		est, src := d.estimate(t, wi)
		x := xferByNode[wk.node]
		eft := wk.outstanding.Load() + est + x
		better := best < 0 || eft < bestEFT
		// Critical-path hint: when a prioritised task sees two workers with
		// the same finish time, take the one that executes it faster — the
		// chain's next dependency releases sooner even though this task's
		// completion instant is nominally equal.
		if !better && t.Priority > 0 && eft == bestEFT && est < bestEst {
			better = true
		}
		if better {
			best, bestEFT, bestEst, bestXfer, bestSrc = wi, eft, est, x, src
		}
	}
	if best < 0 {
		// Every worker offline: place round-robin anyway — the queue stays
		// stealable, and the engine aborts if no worker can ever recover.
		wi := start
		est, src := d.estimate(t, wi)
		return wi, src, est, 0
	}
	return best, bestSrc, bestEst + bestXfer, bestXfer
}

// place routes one task: score, charge, mark residency (the prefetch hint),
// enqueue. The semaphore release is left to push/pushBatch so a batch pays
// for it once.
func (d *dmdaDispatcher) place(t *Task) {
	w, reason, charge, xfer := d.choose(t)
	switch reason {
	case placeModel:
		d.decModel.Inc()
	case placeFallback:
		d.decFallback.Inc()
	default:
		d.decCold.Inc()
	}
	t.estNanos = charge
	wk := &d.workers[w]
	wk.outstanding.Add(charge)
	if d.dataAware {
		for _, a := range t.Accesses {
			if a.Mode.Reads() && a.Handle.markResident(wk.node) {
				d.prefetches.Inc()
			}
		}
		if xfer > 0 {
			d.xferSeconds.Add(float64(xfer) / 1e9)
		}
	}
	wk.pushMu.Lock()
	wk.q.push(t)
	wk.pushMu.Unlock()
	if d.onPlace != nil {
		d.onPlace(w, t, reason, xfer)
	}
}

func (d *dmdaDispatcher) push(from int, t *Task) {
	d.place(t)
	d.sem.release(1)
}

func (d *dmdaDispatcher) pushBatch(from int, ts []*Task) {
	// Place higher-priority tasks first: a batch release happens whenever a
	// finishing task readies several dependents at once, and placement order
	// is consumption order on an uncontended worker (the deque serves
	// oldest-placed first). Submitters mark the critical chain with higher
	// priorities (e.g. POTRF over trailing GEMMs), so the chain task lands
	// ahead of the bulk updates instead of behind them. The slice is copied:
	// pushBatch must not retain or reorder the caller's batch.
	for i := 1; i < len(ts); i++ {
		if ts[i].Priority != ts[0].Priority {
			ordered := append([]*Task(nil), ts...)
			sort.SliceStable(ordered, func(a, b int) bool { return ordered[a].Priority > ordered[b].Priority })
			ts = ordered
			break
		}
	}
	for _, t := range ts {
		d.place(t)
	}
	d.sem.release(len(ts))
}

func (d *dmdaDispatcher) acquire(done, abort <-chan struct{}) bool {
	return d.sem.acquire(done, abort)
}

// dmdaStealBackoff is how long a thief sleeps after handing its credit back
// at the end of a sweep in which every stealable task was declined as
// EFT-unfavorable: the work is better left where the model placed it, and
// the sleep gives the rightful owner — just woken by the returned credit —
// the CPU to go collect it instead of racing the thief for the credit.
const dmdaStealBackoff = 50 * time.Microsecond

// dmdaStealForceAfter is the liveness valve of the EFT-aware steal
// throttle: when a worker's sweeps keep being declined while the whole pool
// completes nothing for this long, the placement model is presumed wrong
// (the victim is hung, offline, or far slower than predicted) and the next
// sweep steals unconditionally.
const dmdaStealForceAfter = 10 * time.Millisecond

// stealFrom takes the newest task from the victim's queue (the one that
// would have waited longest behind the victim's backlog) and transfers its
// outstanding-work charge to the thief at the thief's own estimate plus the
// transfer cost of moving the task's operands to the thief's node.
//
// The steal is EFT-aware unless forced: dmda's placement already routed the
// task to the best expected finish time, so a thief only improves matters
// when it would finish the task sooner than the victim clears its whole
// backlog. Otherwise — the classic failure being a slow architecture
// picking at a fast worker's queue and dragging a near-critical task onto a
// unit ten times worse at it — the task goes back and the thief reports a
// decline instead. The second result distinguishes "declined" (work exists
// but is better off where it is) from "queue empty".
func (d *dmdaDispatcher) stealFrom(thief, victim int, force bool) (*Task, bool) {
	vk := &d.workers[victim]
	tk := &d.workers[thief]
	vk.pushMu.Lock()
	t := vk.q.pop()
	if t == nil {
		vk.pushMu.Unlock()
		return nil, false
	}
	est, _ := d.estimate(t, thief)
	if d.dataAware && len(t.Accesses) > 0 {
		est += d.transferToNode(t, tk.node)
	}
	if !force && tk.outstanding.Load()+est >= vk.outstanding.Load() {
		// The victim finishes its backlog (which ends with t — pop takes
		// the newest placement) before the thief could finish t alone:
		// put it back where the model wanted it.
		vk.q.push(t)
		vk.pushMu.Unlock()
		return nil, true
	}
	vk.pushMu.Unlock()
	vk.outstanding.Add(-t.estNanos)
	if d.dataAware && len(t.Accesses) > 0 {
		for _, a := range t.Accesses {
			if a.Mode.Reads() && a.Handle.markResident(tk.node) {
				d.prefetches.Inc()
			}
		}
	}
	t.estNanos = est
	tk.outstanding.Add(est)
	return t, false
}

// take serves worker w's acquired credit: own queue first (oldest placement
// first), then a steal sweep over the other workers. When every available
// task is declined as EFT-unfavorable, the credit does not belong to this
// worker — the task it stands for sits on a queue whose owner may be parked
// WITHOUT a credit (the global semaphore does not route credits to the
// worker the placement chose). The thief hands the credit back with
// release(1), which wakes the parked owner, naps briefly so the owner runs
// first, and returns takeRetry so the engine loops through acquire again.
func (d *dmdaDispatcher) take(w int, abort <-chan struct{}) (*Task, int) {
	wk := &d.workers[w]
	for {
		// Own queue first, oldest placement first (lock-free top end).
		if t := wk.q.steal(); t != nil {
			wk.stallDone = -1
			return t, -1
		}
		force := wk.stallDone >= 0 && wk.stallDone == d.totCompleted.Load() &&
			time.Since(wk.stallSince) > dmdaStealForceAfter
		declined := false
		for i := 1; i < len(d.workers); i++ {
			victim := (w + i) % len(d.workers)
			t, unfav := d.stealFrom(w, victim, force)
			if t != nil {
				wk.steals.Add(1)
				wk.stallDone = -1
				return t, victim
			}
			declined = declined || unfav
		}
		select {
		case <-abort:
			return nil, -1
		default:
		}
		if !declined {
			// Every queue was empty: the credit's task is mid-flight through
			// another worker's decline-and-put-back window. Spin, it is
			// about to reappear.
			wk.stallDone = -1
			runtime.Gosched()
			continue
		}
		if done := d.totCompleted.Load(); done != wk.stallDone {
			wk.stallDone, wk.stallSince = done, time.Now()
		}
		d.sem.release(1)
		time.Sleep(dmdaStealBackoff)
		return nil, takeRetry
	}
}

func (d *dmdaDispatcher) stolen(w int) int { return int(d.workers[w].steals.Load()) }

func (d *dmdaDispatcher) depth(w int) int {
	if w < 0 {
		return 0 // every push is routed; there is no shared queue
	}
	return d.workers[w].q.size()
}

func (d *dmdaDispatcher) finished(w int, t *Task, dur time.Duration, ran bool) {
	wk := &d.workers[w]
	wk.outstanding.Add(-t.estNanos)
	if !ran {
		return
	}
	wk.busyNanos.Add(int64(dur))
	wk.completed.Add(1)
	d.totBusy.Add(int64(dur))
	d.totCompleted.Add(1)
	if d.dataAware {
		// A write moves the handle: it is now resident only where it was
		// produced. (Skipped when the kernel never ran — data unchanged.)
		for _, a := range t.Accesses {
			if a.Mode.Writes() {
				a.Handle.setResidentOnly(wk.node)
			}
		}
	}
}

func (d *dmdaDispatcher) setOffline(w int, offline bool) {
	d.workers[w].offline.Store(offline)
}
