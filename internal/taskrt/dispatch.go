package taskrt

import (
	"runtime"
	"sync"
)

// dispatcher abstracts how ready tasks reach real-engine workers. Both
// implementations share a credit discipline: push enqueues the task and then
// deposits one credit on the ready channel; a worker first acquires a credit
// (or learns the run is over) and only then calls take, which is guaranteed
// to find a task somewhere. The invariant "queued tasks >= outstanding
// acquired credits" holds because every push adds exactly one task and one
// credit, and every acquired credit removes exactly one task.
//
//   - chanDispatcher is the single shared FIFO the engine used historically
//     (StarPU's eager central queue): one buffered channel every worker
//     drains, selected by Scheduler "eager". It is kept both as the
//     behavioural baseline and so the bench pipeline can measure the
//     dispatch-overhead delta against the stealing engine in one binary.
//   - stealDispatcher gives each worker a Chase-Lev deque plus one shared
//     injector for pushes from outside the pool. A worker that completes a
//     task pushes newly-ready dependents onto its own deque and pops them
//     back LIFO — the locality hint: dependents run on the worker that just
//     produced their inputs, with their data still cache-hot (the real-engine
//     analogue of the sim engine's data-aware dmda policy). Idle workers
//     first drain the injector, then steal FIFO from victims.
type dispatcher interface {
	// push makes t runnable. from identifies the pushing worker so the task
	// can land on its own deque; from < 0 marks pushes from outside the pool
	// (initial seeding, requeue timers), which go to the shared injector.
	push(from int, t *Task)
	// ready returns the credit channel: one receive per available task.
	ready() <-chan struct{}
	// take returns a task for worker w after a credit was acquired. It only
	// returns nil when abort closes mid-sweep. The second result is the
	// victim worker the task was stolen from, or -1 when it came from the
	// worker's own queue or the shared pool — steal provenance for traces.
	take(w int, abort <-chan struct{}) (*Task, int)
	// stolen reports how many tasks worker w has obtained by stealing.
	stolen(w int) int
	// depth approximates worker w's queue length (w < 0: the shared queue).
	// A racy snapshot for the metrics sampler, never for control flow.
	depth(w int) int
}

// chanDispatcher: the single-channel baseline.
type chanDispatcher struct {
	queue  chan *Task
	notify chan struct{}
}

// newChanDispatcher sizes both channels so pushes never block: a task
// occupies at most one slot at a time, even across retries.
func newChanDispatcher(tasks int) *chanDispatcher {
	return &chanDispatcher{
		queue:  make(chan *Task, tasks),
		notify: make(chan struct{}, tasks),
	}
}

func (d *chanDispatcher) push(from int, t *Task) {
	d.queue <- t
	d.notify <- struct{}{}
}

func (d *chanDispatcher) ready() <-chan struct{} { return d.notify }

func (d *chanDispatcher) take(w int, abort <-chan struct{}) (*Task, int) {
	select {
	case t := <-d.queue:
		return t, -1
	case <-abort:
		return nil, -1
	}
}

func (d *chanDispatcher) stolen(int) int { return 0 }

func (d *chanDispatcher) depth(w int) int {
	if w < 0 {
		return len(d.queue)
	}
	return 0
}

// stealDispatcher: per-worker Chase-Lev deques, a shared injector, and
// per-worker steal counters (owner-written, merged after shutdown).
type stealDispatcher struct {
	deques []*wsDeque
	steals []int64

	injMu  sync.Mutex
	inj    []*Task
	notify chan struct{}
}

func newStealDispatcher(workers, tasks int) *stealDispatcher {
	d := &stealDispatcher{
		deques: make([]*wsDeque, workers),
		steals: make([]int64, workers),
		notify: make(chan struct{}, tasks),
	}
	for w := range d.deques {
		d.deques[w] = newWSDeque(tasks)
	}
	return d
}

func (d *stealDispatcher) push(from int, t *Task) {
	if from >= 0 {
		d.deques[from].push(t)
	} else {
		d.injMu.Lock()
		d.inj = append(d.inj, t)
		d.injMu.Unlock()
	}
	d.notify <- struct{}{}
}

func (d *stealDispatcher) ready() <-chan struct{} { return d.notify }

// popInjector removes the oldest injected task.
func (d *stealDispatcher) popInjector() *Task {
	d.injMu.Lock()
	defer d.injMu.Unlock()
	if len(d.inj) == 0 {
		return nil
	}
	t := d.inj[0]
	d.inj = d.inj[1:]
	return t
}

func (d *stealDispatcher) take(w int, abort <-chan struct{}) (*Task, int) {
	for {
		if t := d.deques[w].pop(); t != nil {
			return t, -1
		}
		if t := d.popInjector(); t != nil {
			return t, -1
		}
		// Steal sweep, starting at the next worker so victims differ across
		// thieves. Blacklisted workers' deques stay stealable, so a dying
		// worker never strands its queued tasks.
		for i := 1; i < len(d.deques); i++ {
			victim := (w + i) % len(d.deques)
			if t := d.deques[victim].steal(); t != nil {
				d.steals[w]++
				return t, victim
			}
		}
		// The credit guarantees a task exists; we only get here on transient
		// races (a concurrent pop/steal between our scans). Yield and rescan
		// unless the run is aborting.
		select {
		case <-abort:
			return nil, -1
		default:
		}
		runtime.Gosched()
	}
}

func (d *stealDispatcher) stolen(w int) int { return int(d.steals[w]) }

func (d *stealDispatcher) depth(w int) int {
	if w >= 0 {
		return d.deques[w].size()
	}
	d.injMu.Lock()
	defer d.injMu.Unlock()
	return len(d.inj)
}
