package taskrt

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/perfmodel"
)

// dispatcher abstracts how ready tasks reach real-engine workers. Both
// implementations share a credit discipline: push enqueues the task and then
// deposits one credit on the ready channel; a worker first acquires a credit
// (or learns the run is over) and only then calls take, which is guaranteed
// to find a task somewhere. The invariant "queued tasks >= outstanding
// acquired credits" holds because every push adds exactly one task and one
// credit, and every acquired credit removes exactly one task.
//
//   - chanDispatcher is the single shared FIFO the engine used historically
//     (StarPU's eager central queue): one buffered channel every worker
//     drains, selected by Scheduler "eager". It is kept both as the
//     behavioural baseline and so the bench pipeline can measure the
//     dispatch-overhead delta against the stealing engine in one binary.
//   - stealDispatcher gives each worker a Chase-Lev deque plus one shared
//     injector for pushes from outside the pool. A worker that completes a
//     task pushes newly-ready dependents onto its own deque and pops them
//     back LIFO — the locality hint: dependents run on the worker that just
//     produced their inputs, with their data still cache-hot (the real-engine
//     analogue of the sim engine's data-aware dmda policy). Idle workers
//     first drain the injector, then steal FIFO from victims.
//   - dmdaDispatcher routes every push to the worker with the earliest
//     model-predicted finish time (StarPU's dmda policy on the real engine):
//     per-worker outstanding-work estimates plus a perfmodel prediction for
//     that worker's architecture, falling back to the worker's observed mean
//     task time, then to round-robin while models are cold. The steal path
//     mops up mispredictions.
type dispatcher interface {
	// push makes t runnable. from identifies the pushing worker so the task
	// can land on its own deque; from < 0 marks pushes from outside the pool
	// (initial seeding, requeue timers), which go to the shared injector.
	push(from int, t *Task)
	// ready returns the credit channel: one receive per available task.
	ready() <-chan struct{}
	// take returns a task for worker w after a credit was acquired. It only
	// returns nil when abort closes mid-sweep. The second result is the
	// victim worker the task was stolen from, or -1 when it came from the
	// worker's own queue or the shared pool — steal provenance for traces.
	take(w int, abort <-chan struct{}) (*Task, int)
	// stolen reports how many tasks worker w has obtained by stealing.
	stolen(w int) int
	// depth approximates worker w's queue length (w < 0: the shared queue).
	// A racy snapshot for the metrics sampler, never for control flow.
	depth(w int) int
	// finished tells the dispatcher worker w is done with t (success or
	// failure), releasing any outstanding-work accounting. ran is false when
	// the attempt never executed the kernel (injected fault at launch), so
	// observed-time statistics stay honest.
	finished(w int, t *Task, d time.Duration, ran bool)
}

// offlineAware is implemented by dispatchers that route at push time and
// therefore must know which workers the fault-tolerance layer has
// blacklisted. Queues of offline workers stay stealable either way.
type offlineAware interface {
	setOffline(w int, offline bool)
}

// chanDispatcher: the single-channel baseline.
type chanDispatcher struct {
	queue  chan *Task
	notify chan struct{}
}

// newChanDispatcher sizes both channels so pushes never block: a task
// occupies at most one slot at a time, even across retries.
func newChanDispatcher(tasks int) *chanDispatcher {
	return &chanDispatcher{
		queue:  make(chan *Task, tasks),
		notify: make(chan struct{}, tasks),
	}
}

func (d *chanDispatcher) push(from int, t *Task) {
	d.queue <- t
	d.notify <- struct{}{}
}

func (d *chanDispatcher) ready() <-chan struct{} { return d.notify }

func (d *chanDispatcher) take(w int, abort <-chan struct{}) (*Task, int) {
	select {
	case t := <-d.queue:
		return t, -1
	case <-abort:
		return nil, -1
	}
}

func (d *chanDispatcher) stolen(int) int { return 0 }

func (d *chanDispatcher) finished(int, *Task, time.Duration, bool) {}

func (d *chanDispatcher) depth(w int) int {
	if w < 0 {
		return len(d.queue)
	}
	return 0
}

// stealDispatcher: per-worker Chase-Lev deques, a shared injector, and
// per-worker steal counters (owner-written, merged after shutdown).
type stealDispatcher struct {
	deques []*wsDeque
	steals []int64

	injMu  sync.Mutex
	inj    []*Task
	notify chan struct{}
}

func newStealDispatcher(workers, tasks int) *stealDispatcher {
	d := &stealDispatcher{
		deques: make([]*wsDeque, workers),
		steals: make([]int64, workers),
		notify: make(chan struct{}, tasks),
	}
	for w := range d.deques {
		d.deques[w] = newWSDeque(tasks)
	}
	return d
}

func (d *stealDispatcher) push(from int, t *Task) {
	if from >= 0 {
		d.deques[from].push(t)
	} else {
		d.injMu.Lock()
		d.inj = append(d.inj, t)
		d.injMu.Unlock()
	}
	d.notify <- struct{}{}
}

func (d *stealDispatcher) ready() <-chan struct{} { return d.notify }

// popInjector removes the oldest injected task.
func (d *stealDispatcher) popInjector() *Task {
	d.injMu.Lock()
	defer d.injMu.Unlock()
	if len(d.inj) == 0 {
		return nil
	}
	t := d.inj[0]
	d.inj = d.inj[1:]
	return t
}

func (d *stealDispatcher) take(w int, abort <-chan struct{}) (*Task, int) {
	for {
		if t := d.deques[w].pop(); t != nil {
			return t, -1
		}
		if t := d.popInjector(); t != nil {
			return t, -1
		}
		// Steal sweep, starting at the next worker so victims differ across
		// thieves. Blacklisted workers' deques stay stealable, so a dying
		// worker never strands its queued tasks.
		for i := 1; i < len(d.deques); i++ {
			victim := (w + i) % len(d.deques)
			if t := d.deques[victim].steal(); t != nil {
				d.steals[w]++
				return t, victim
			}
		}
		// The credit guarantees a task exists; we only get here on transient
		// races (a concurrent pop/steal between our scans). Yield and rescan
		// unless the run is aborting.
		select {
		case <-abort:
			return nil, -1
		default:
		}
		runtime.Gosched()
	}
}

func (d *stealDispatcher) stolen(w int) int { return int(d.steals[w]) }

func (d *stealDispatcher) finished(int, *Task, time.Duration, bool) {}

func (d *stealDispatcher) depth(w int) int {
	if w >= 0 {
		return d.deques[w].size()
	}
	d.injMu.Lock()
	defer d.injMu.Unlock()
	return len(d.inj)
}

// Placement-decision sources, in falling confidence order. They label the
// taskrt_sched_decisions_total metrics family and the trace.Place events.
const (
	placeModel    = "model"    // perfmodel estimate for the worker's arch
	placeFallback = "fallback" // worker's observed mean task time
	placeCold     = "cold"     // no history anywhere: round-robin warm-up
)

// dmdaWorker is one worker's routing state under the dmda dispatcher. The
// queue is a mutex-protected deque (pushes come from arbitrary goroutines,
// so the owner-only Chase-Lev protocol does not apply): the owner pops FIFO
// from the front — the order the model placed them — and thieves steal from
// the back.
type dmdaWorker struct {
	mu sync.Mutex
	q  []*Task

	arch    string
	offline atomic.Bool
	// outstanding is the predicted nanoseconds of work queued on or running
	// on this worker — the queued-work term of the EFT score.
	outstanding atomic.Int64
	// busyNanos/completed feed the observed-mean fallback estimate.
	busyNanos atomic.Int64
	completed atomic.Int64
	steals    atomic.Int64
}

// dmdaDispatcher implements StarPU's dmda (deque model, data aware) policy
// on the real engine: push scores every online worker with an expected
// finish time — its outstanding-work backlog plus the predicted execution
// time of the task on that worker's architecture — and routes the task to
// the minimum. Prediction sources fall back in order: perfmodel history for
// (codelet, arch), the worker's observed mean task time, and round-robin
// over history-less workers so every architecture warms its model. Workers
// whose own queue runs dry steal from victims, so a misprediction costs a
// steal rather than idle time.
type dmdaDispatcher struct {
	workers []dmdaWorker
	models  *perfmodel.Store
	notify  chan struct{}
	rr      atomic.Int64 // round-robin cursor for cold placements

	// Cached decision counters (taskrt_sched_decisions_total{policy="dmda"}).
	decModel, decFallback, decCold *metrics.Counter
	// onPlace, when non-nil, observes every placement (trace recording).
	onPlace func(w int, t *Task, reason string)
}

func newDmdaDispatcher(archs []string, tasks int, models *perfmodel.Store) *dmdaDispatcher {
	d := &dmdaDispatcher{
		workers:     make([]dmdaWorker, len(archs)),
		models:      models,
		notify:      make(chan struct{}, tasks),
		decModel:    rtm.schedDecisions.With("dmda", placeModel),
		decFallback: rtm.schedDecisions.With("dmda", placeFallback),
		decCold:     rtm.schedDecisions.With("dmda", placeCold),
	}
	for w := range d.workers {
		d.workers[w].arch = archs[w]
	}
	return d
}

// estimate predicts t's execution time on worker w in nanoseconds, tagged
// with the prediction source.
func (d *dmdaDispatcher) estimate(t *Task, w int) (nanos int64, source string) {
	if d.models != nil && t.Flops > 0 {
		if sec, ok := d.models.Model(t.Codelet.Name, d.workers[w].arch).Estimate(t.Flops); ok {
			return int64(sec * 1e9), placeModel
		}
	}
	if n := d.workers[w].completed.Load(); n > 0 {
		return d.workers[w].busyNanos.Load() / n, placeFallback
	}
	return 0, placeCold
}

// choose scores the online workers and returns the winner, the decision
// source, and the predicted nanoseconds charged to its backlog.
func (d *dmdaDispatcher) choose(t *Task) (int, string, int64) {
	best, bestEFT, bestEst := -1, int64(0), int64(0)
	bestSrc := placeCold
	var cold []int
	for w := range d.workers {
		if d.workers[w].offline.Load() {
			continue
		}
		est, src := d.estimate(t, w)
		if src == placeCold {
			cold = append(cold, w)
			continue
		}
		eft := d.workers[w].outstanding.Load() + est
		if best < 0 || eft < bestEFT {
			best, bestEFT, bestEst, bestSrc = w, eft, est, src
		}
	}
	if len(cold) > 0 {
		// History-less workers take absolute priority: each needs samples
		// before the model can rank it, so spread warm-up round-robin.
		return cold[int(d.rr.Add(1)-1)%len(cold)], placeCold, 0
	}
	if best < 0 {
		// Every worker offline: place round-robin anyway — the queue stays
		// stealable, and the engine aborts if no worker can ever recover.
		w := int(d.rr.Add(1)-1) % len(d.workers)
		est, _ := d.estimate(t, w)
		return w, placeFallback, est
	}
	return best, bestSrc, bestEst
}

func (d *dmdaDispatcher) push(from int, t *Task) {
	w, reason, est := d.choose(t)
	switch reason {
	case placeModel:
		d.decModel.Inc()
	case placeFallback:
		d.decFallback.Inc()
	default:
		d.decCold.Inc()
	}
	t.estNanos = est
	wk := &d.workers[w]
	wk.outstanding.Add(est)
	wk.mu.Lock()
	wk.q = append(wk.q, t)
	wk.mu.Unlock()
	if d.onPlace != nil {
		d.onPlace(w, t, reason)
	}
	d.notify <- struct{}{}
}

func (d *dmdaDispatcher) ready() <-chan struct{} { return d.notify }

// popOwn removes the oldest task the model placed on worker w.
func (d *dmdaDispatcher) popOwn(w int) *Task {
	wk := &d.workers[w]
	wk.mu.Lock()
	defer wk.mu.Unlock()
	if len(wk.q) == 0 {
		return nil
	}
	t := wk.q[0]
	wk.q = wk.q[1:]
	return t
}

// stealFrom takes the newest task from the victim's queue (the one that
// would have waited longest behind the victim's backlog) and transfers its
// outstanding-work charge to the thief at the thief's own estimate.
func (d *dmdaDispatcher) stealFrom(thief, victim int) *Task {
	vk := &d.workers[victim]
	vk.mu.Lock()
	n := len(vk.q)
	if n == 0 {
		vk.mu.Unlock()
		return nil
	}
	t := vk.q[n-1]
	vk.q = vk.q[:n-1]
	vk.mu.Unlock()
	vk.outstanding.Add(-t.estNanos)
	est, _ := d.estimate(t, thief)
	t.estNanos = est
	d.workers[thief].outstanding.Add(est)
	return t
}

func (d *dmdaDispatcher) take(w int, abort <-chan struct{}) (*Task, int) {
	for {
		if t := d.popOwn(w); t != nil {
			return t, -1
		}
		for i := 1; i < len(d.workers); i++ {
			victim := (w + i) % len(d.workers)
			if t := d.stealFrom(w, victim); t != nil {
				d.workers[w].steals.Add(1)
				return t, victim
			}
		}
		select {
		case <-abort:
			return nil, -1
		default:
		}
		runtime.Gosched()
	}
}

func (d *dmdaDispatcher) stolen(w int) int { return int(d.workers[w].steals.Load()) }

func (d *dmdaDispatcher) depth(w int) int {
	if w < 0 {
		return 0 // every push is routed; there is no shared queue
	}
	wk := &d.workers[w]
	wk.mu.Lock()
	defer wk.mu.Unlock()
	return len(wk.q)
}

func (d *dmdaDispatcher) finished(w int, t *Task, dur time.Duration, ran bool) {
	wk := &d.workers[w]
	wk.outstanding.Add(-t.estNanos)
	if ran {
		wk.busyNanos.Add(int64(dur))
		wk.completed.Add(1)
	}
}

func (d *dmdaDispatcher) setOffline(w int, offline bool) {
	d.workers[w].offline.Store(offline)
}
