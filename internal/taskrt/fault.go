package taskrt

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// FaultEvent is one injected processing-unit failure. Exactly one trigger
// must be set: AtTime (the unit dies at that virtual/wall time) or
// AfterTasks (the unit dies on its Nth task attempt, 1-based).
//
// Unit names differ per engine: the simulated engine uses expanded simhw
// unit ids ("dev0", "host.3"); the real engine uses worker ids ("worker0").
// Events naming unknown units are inert.
type FaultEvent struct {
	// Unit identifies the failing processing unit.
	Unit string
	// AtTime, when > 0, fails the unit at this time: virtual seconds in Sim
	// mode, wall-clock seconds since Run start in Real mode. In Sim mode the
	// failure manifests on the first task whose execution on the unit would
	// reach past AtTime; in Real mode it manifests on the first task the
	// worker picks up after AtTime has elapsed.
	AtTime float64
	// AfterTasks, when > 0, fails the unit on its Nth task attempt
	// (1-based). In Sim mode the kernel crashes halfway through; in Real
	// mode the attempt fails at launch, before the kernel touches data.
	AfterTasks int
	// Hang makes the failure manifest as a hung kernel instead of a crash:
	// detection is delayed until the watchdog timeout (perfmodel estimate ×
	// RetryPolicy.WatchdogFactor) expires, so hangs cost more than crashes
	// but can never deadlock Run.
	Hang bool
	// RecoverAfter, when > 0, brings the unit back online this many seconds
	// after failure detection (a transient fault). Zero means the unit is
	// blacklisted for the rest of the run.
	RecoverAfter float64
	// Delay, when > 0, turns the event into a slowdown injection instead of
	// a failure: the unit stays correct but every kernel takes Delay extra
	// seconds — the gray failure a straggler detector exists to catch. Only
	// the cluster worker (whose Unit is the node name) applies delays; the
	// in-process engines ignore them. Triggers are optional gates here: an
	// untriggered delay is active from the start, AtTime activates it after
	// that many wall-clock seconds, AfterTasks from the Nth execution on.
	Delay float64
}

// trigger reports which triggers the event has configured.
func (f *FaultEvent) trigger() (byTime bool, byTasks bool) {
	return f.AtTime > 0, f.AfterTasks > 0
}

// FaultPlan is a deterministic schedule of injected failures. For a fixed
// plan (and runtime seed) a simulated execution is bit-for-bit reproducible,
// which is what makes fault-tolerance behaviour testable.
type FaultPlan struct {
	// Seed identifies the plan; RandomFaultPlan derives its events from it.
	Seed int64
	// Events are the injected failures. Multiple events may target the same
	// unit (e.g. a transient hang followed by a permanent crash); they fire
	// in slice order.
	Events []FaultEvent
}

// Validate checks that every event names a unit and has exactly one trigger
// (failure events) or at most one (delay events, whose trigger is an
// optional activation gate).
func (p *FaultPlan) Validate() error {
	for i := range p.Events {
		f := &p.Events[i]
		if f.Unit == "" {
			return fmt.Errorf("taskrt: fault event %d has no unit", i)
		}
		byTime, byTasks := f.trigger()
		if f.Delay > 0 {
			if byTime && byTasks {
				return fmt.Errorf("taskrt: delay event %d (unit %q) may gate on at most one of AtTime/AfterTasks", i, f.Unit)
			}
		} else if byTime == byTasks {
			return fmt.Errorf("taskrt: fault event %d (unit %q) needs exactly one of AtTime/AfterTasks", i, f.Unit)
		}
		if f.AtTime < 0 || f.AfterTasks < 0 || f.RecoverAfter < 0 || f.Delay < 0 {
			return fmt.Errorf("taskrt: fault event %d (unit %q) has negative timing", i, f.Unit)
		}
	}
	return nil
}

// forUnit returns the plan's failure events for one unit, in slice order.
// Delay events are excluded: the in-process engines' fault queues fire
// crashes and hangs, and must not misread a gated slowdown as one.
func (p *FaultPlan) forUnit(unit string) []FaultEvent {
	if p == nil {
		return nil
	}
	var out []FaultEvent
	for _, f := range p.Events {
		if f.Unit == unit && f.Delay <= 0 {
			out = append(out, f)
		}
	}
	return out
}

// DelaysForUnit returns the plan's slowdown injections for one unit, in
// slice order — the cluster worker's view of the plan (its unit is the node
// name).
func (p *FaultPlan) DelaysForUnit(unit string) []FaultEvent {
	if p == nil {
		return nil
	}
	var out []FaultEvent
	for _, f := range p.Events {
		if f.Unit == unit && f.Delay > 0 {
			out = append(out, f)
		}
	}
	return out
}

// Units returns the distinct unit ids named by the plan, sorted.
func (p *FaultPlan) Units() []string {
	seen := map[string]bool{}
	for _, f := range p.Events {
		seen[f.Unit] = true
	}
	out := make([]string, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// RandomFaultPlan generates a seeded pseudo-random plan over the given
// units: each unit receives up to two events mixing time and task-count
// triggers, hangs and transient recoveries, with all times drawn from
// (0, horizon]. The same (seed, units, horizon) always yields the same plan
// — the deterministic input the property-based fault-tolerance tests need.
func RandomFaultPlan(seed int64, units []string, horizon float64) *FaultPlan {
	if horizon <= 0 {
		horizon = 1
	}
	rng := rand.New(rand.NewSource(seed))
	plan := &FaultPlan{Seed: seed}
	for _, u := range units {
		n := rng.Intn(3) // 0, 1 or 2 events for this unit
		for i := 0; i < n; i++ {
			f := FaultEvent{Unit: u, Hang: rng.Float64() < 0.2}
			if rng.Float64() < 0.5 {
				f.AtTime = rng.Float64() * horizon
				if f.AtTime <= 0 {
					f.AtTime = horizon / 2
				}
			} else {
				f.AfterTasks = 1 + rng.Intn(4)
			}
			if rng.Float64() < 0.3 {
				f.RecoverAfter = rng.Float64() * horizon
				if f.RecoverAfter <= 0 {
					f.RecoverAfter = horizon / 4
				}
			}
			plan.Events = append(plan.Events, f)
		}
	}
	return plan
}

// RetryPolicy tunes failure recovery. The zero value takes defaults; any
// non-zero field activates fault tolerance even without a FaultPlan (so real
// codelet errors are retried instead of aborting the run).
type RetryPolicy struct {
	// MaxAttempts caps how often one task may fail before Run gives up
	// (default 4).
	MaxAttempts int
	// BackoffBase is the first retry delay in seconds (default 1ms); the
	// delay doubles per failed attempt of the same task.
	BackoffBase float64
	// BackoffCap bounds the exponential backoff in seconds (default 100ms).
	BackoffCap float64
	// WatchdogFactor scales the per-codelet execution-time estimate into a
	// hang-detection timeout (default 8). The estimate comes from the
	// configured perfmodel store when it has samples, else from the
	// simulator's own cost model (Sim mode only).
	WatchdogFactor float64
	// TaskTimeout is an absolute watchdog timeout in seconds used in Real
	// mode when no perfmodel estimate is available (0 disables the
	// fallback watchdog).
	TaskTimeout float64
}

// Defaults for the zero-valued RetryPolicy fields.
const (
	DefaultMaxAttempts    = 4
	DefaultBackoffBase    = 1e-3
	DefaultBackoffCap     = 0.1
	DefaultWatchdogFactor = 8.0
)

// withDefaults fills zero fields.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultMaxAttempts
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = DefaultBackoffBase
	}
	if p.BackoffCap <= 0 {
		p.BackoffCap = DefaultBackoffCap
	}
	if p.WatchdogFactor <= 0 {
		p.WatchdogFactor = DefaultWatchdogFactor
	}
	return p
}

// backoff returns the capped exponential delay in seconds before retry
// attempt n (n counts failures so far, starting at 1).
func (p RetryPolicy) backoff(n int) float64 {
	if n < 1 {
		n = 1
	}
	d := p.BackoffBase * math.Pow(2, float64(n-1))
	if d > p.BackoffCap {
		d = p.BackoffCap
	}
	return d
}

// backoffDuration is backoff as a wall-clock duration (Real mode).
func (p RetryPolicy) backoffDuration(n int) time.Duration {
	return time.Duration(p.backoff(n) * float64(time.Second))
}

// ftEnabled reports whether the fault-tolerance machinery is active: an
// injection plan, a dynamic tracker, or an explicit retry policy all switch
// it on. Without any of them the engines keep their fail-fast behaviour.
func (rt *Runtime) ftEnabled() bool {
	return rt.cfg.Faults != nil || rt.cfg.Tracker != nil || rt.cfg.Retry != (RetryPolicy{})
}

// faultQueue is the per-unit runtime view of pending injected events.
type faultQueue struct {
	events []FaultEvent
	next   int
}

// pending returns the next unconsumed event, or nil.
func (q *faultQueue) pending() *FaultEvent {
	if q == nil || q.next >= len(q.events) {
		return nil
	}
	return &q.events[q.next]
}

// consume marks the current event as fired.
func (q *faultQueue) consume() { q.next++ }
