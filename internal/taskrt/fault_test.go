package taskrt

import (
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/discover"
	"repro/internal/dynamic"
	"repro/internal/perfmodel"
	"repro/internal/trace"
)

func TestFaultPlanValidate(t *testing.T) {
	bad := []FaultPlan{
		{Events: []FaultEvent{{AtTime: 1}}},                              // no unit
		{Events: []FaultEvent{{Unit: "dev0"}}},                           // no trigger
		{Events: []FaultEvent{{Unit: "dev0", AtTime: 1, AfterTasks: 1}}}, // both triggers
		{Events: []FaultEvent{{Unit: "dev0", AtTime: 1, RecoverAfter: -1}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d should fail validation", i)
		}
	}
	good := FaultPlan{Events: []FaultEvent{
		{Unit: "dev0", AtTime: 0.5, Hang: true},
		{Unit: "dev1", AfterTasks: 3, RecoverAfter: 1},
	}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := good.Units(); len(got) != 2 || got[0] != "dev0" || got[1] != "dev1" {
		t.Fatalf("Units() = %v", got)
	}
	// Invalid plans are rejected at construction.
	if _, err := New(Config{
		Platform: discover.MustPlatform("xeon-2gpu"), Mode: Sim,
		Faults: &FaultPlan{Events: []FaultEvent{{Unit: "dev0"}}},
	}); err == nil {
		t.Fatal("New must reject an invalid fault plan")
	}
}

// simFaultRun executes `tiles` independent GEMM tiles under a fault plan.
func simFaultRun(t *testing.T, sched string, tiles int, plan *FaultPlan, tracker *dynamic.Tracker, tr *trace.Trace) *Report {
	t.Helper()
	rt, err := New(Config{
		Platform:  discover.MustPlatform("xeon-2gpu"),
		Mode:      Sim,
		Scheduler: sched,
		Faults:    plan,
		Tracker:   tracker,
		Trace:     tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	submitTiles(t, rt, tiles, 2e9, 4<<20)
	rep, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestSimFaultCrashBlacklistsAndCompletes(t *testing.T) {
	for _, sched := range []string{"eager", "ws", "dmda", "heft", "random"} {
		plan := &FaultPlan{Events: []FaultEvent{
			{Unit: "dev0", AtTime: 0.001},
			{Unit: "dev1", AfterTasks: 2},
		}}
		rep := simFaultRun(t, sched, 48, plan, nil, nil)
		if rep.Tasks != 48 {
			t.Fatalf("%s: tasks = %d", sched, rep.Tasks)
		}
		sum := 0
		for _, u := range rep.PerUnit {
			sum += u.Tasks
		}
		if sum != 48 {
			t.Fatalf("%s: per-unit successful tasks = %d, want 48", sched, sum)
		}
		if rep.FailedAttempts == 0 || rep.RetriedTasks == 0 {
			t.Fatalf("%s: no recorded failures: %+v", sched, rep)
		}
		if rep.BlacklistedUnits() != 2 || rep.Blacklisted[0] != "dev0" || rep.Blacklisted[1] != "dev1" {
			t.Fatalf("%s: blacklisted = %v", sched, rep.Blacklisted)
		}
		if !strings.Contains(rep.String(), "blacklisted=[dev0 dev1]") {
			t.Fatalf("%s: report misses fault summary: %s", sched, rep.String())
		}
	}
}

func TestSimFaultDeterministicByteForByte(t *testing.T) {
	plan := &FaultPlan{Seed: 7, Events: []FaultEvent{
		{Unit: "dev0", AtTime: 0.002, Hang: true},
		{Unit: "dev1", AfterTasks: 1, RecoverAfter: 0.01},
		{Unit: "host.3", AfterTasks: 2},
	}}
	var first string
	for i := 0; i < 3; i++ {
		tr := trace.New()
		rep := simFaultRun(t, "dmda", 40, plan, nil, tr)
		out := rep.String() + tr.Gantt(64) + tr.Summary()
		if i == 0 {
			first = out
			continue
		}
		if out != first {
			t.Fatalf("run %d differs from run 0:\n%s\n---\n%s", i, out, first)
		}
	}
}

func TestSimFaultRecoveryReadmitsUnit(t *testing.T) {
	// dev0 suffers a transient fault and recovers almost immediately; it
	// must not end the run blacklisted and should execute tasks afterwards.
	tr := trace.New()
	plan := &FaultPlan{Events: []FaultEvent{{Unit: "dev0", AfterTasks: 1, RecoverAfter: 1e-4}}}
	rep := simFaultRun(t, "dmda", 64, plan, nil, tr)
	if rep.BlacklistedUnits() != 0 {
		t.Fatalf("transient fault left units blacklisted: %v", rep.Blacklisted)
	}
	if rep.FailedAttempts == 0 {
		t.Fatal("fault did not fire")
	}
	if u, ok := rep.UnitByID("dev0"); !ok || u.Tasks == 0 {
		t.Fatalf("recovered dev0 ran no tasks: %+v", u)
	}
	if len(tr.OfKind(trace.Recover)) != 1 || len(tr.OfKind(trace.Failure)) != 1 {
		t.Fatalf("trace kinds: recover=%d failure=%d", len(tr.OfKind(trace.Recover)), len(tr.OfKind(trace.Failure)))
	}
}

func TestSimFaultHangCostsWatchdogTimeout(t *testing.T) {
	crash := simFaultRun(t, "eager", 32, &FaultPlan{Events: []FaultEvent{{Unit: "dev0", AfterTasks: 1}}}, nil, nil)
	hang := simFaultRun(t, "eager", 32, &FaultPlan{Events: []FaultEvent{{Unit: "dev0", AfterTasks: 1, Hang: true}}}, nil, nil)
	if hang.WatchdogTrips != 1 || crash.WatchdogTrips != 0 {
		t.Fatalf("watchdog trips: hang=%d crash=%d", hang.WatchdogTrips, crash.WatchdogTrips)
	}
	// The watchdog holds the hung unit for estimate×factor, so the hung run
	// can only be slower or equal.
	if hang.MakespanSeconds < crash.MakespanSeconds {
		t.Fatalf("hang (%g) finished before crash (%g)", hang.MakespanSeconds, crash.MakespanSeconds)
	}
}

func TestSimFaultTrackerWiring(t *testing.T) {
	tracker, err := dynamic.NewTracker(discover.MustPlatform("xeon-2gpu"))
	if err != nil {
		t.Fatal(err)
	}
	var events []string
	tracker.OnChange(func(e dynamic.Event) {
		events = append(events, e.Kind.String()+":"+e.PU)
	})
	// dev1 is offline before the run starts: the engine must not use it.
	if err := tracker.SetOffline("dev1"); err != nil {
		t.Fatal(err)
	}
	plan := &FaultPlan{Events: []FaultEvent{{Unit: "dev0", AtTime: 0.001}}}
	rep := simFaultRun(t, "dmda", 48, plan, tracker, nil)
	if u, ok := rep.UnitByID("dev1"); !ok || u.Tasks != 0 {
		t.Fatalf("pre-offline dev1 executed %d tasks", u.Tasks)
	}
	if tracker.IsOnline("dev0") {
		t.Fatal("dev0 failure was not mirrored into the tracker")
	}
	found := false
	for _, e := range events {
		if e == "offline:dev0" {
			found = true
		}
	}
	if !found {
		t.Fatalf("tracker observer missed the in-flight failure: %v", events)
	}
	if rep.BlacklistedUnits() != 1 || rep.Blacklisted[0] != "dev0" {
		t.Fatalf("blacklisted = %v (pre-offline units must not be counted)", rep.Blacklisted)
	}
}

func TestSimFaultVariantFallbackToCPU(t *testing.T) {
	// Both GPUs die almost immediately: the multi-variant DGEMM codelet must
	// fall back to its x86 implementation and every task still completes.
	plan := &FaultPlan{Events: []FaultEvent{
		{Unit: "dev0", AtTime: 1e-6},
		{Unit: "dev1", AtTime: 1e-6},
	}}
	rep := simFaultRun(t, "dmda", 48, plan, nil, nil)
	if got := rep.TasksOnArch("x86"); got != 48 {
		t.Fatalf("x86 ran %d of 48 tasks after GPU loss", got)
	}
	if rep.BlacklistedUnits() != 2 {
		t.Fatalf("blacklisted = %v", rep.Blacklisted)
	}
}

func TestSimFaultDataRecoveredFromHostMirror(t *testing.T) {
	// A serialized chain of readwrite tasks on one handle, with both GPUs
	// dying on their second attempt. Each device write is checkpointed to the
	// host memory node, so when a device dies the chain continues from the
	// host copy — without the write-back mirror, invalidating the dead
	// device's node would orphan the handle's only valid copy and Run would
	// fail with a data-loss error.
	rt, err := New(Config{
		Platform:  discover.MustPlatform("xeon-2gpu"),
		Mode:      Sim,
		Scheduler: "dmda", // data-aware: keeps the chain on the fast GPUs until they die
		Faults: &FaultPlan{Events: []FaultEvent{
			{Unit: "dev0", AfterTasks: 2},
			{Unit: "dev1", AfterTasks: 2},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCodelet("step",
		Impl{Arch: "gpu", SpeedFactor: 20},
		Impl{Arch: "x86", Func: func(*TaskContext) error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	h := rt.NewHandle("data", 4<<20, nil)
	const steps = 6
	for i := 0; i < steps; i++ {
		if err := rt.Submit(&Task{Codelet: cl, Accesses: []Access{RW(h)}, Flops: 4e9}); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tasks != steps || rep.FailedAttempts == 0 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.BlacklistedUnits() != 2 {
		t.Fatalf("blacklisted = %v", rep.Blacklisted)
	}
	// After both GPUs die mid-chain, the remaining steps must fall back to
	// the x86 variant and read the handle from the host mirror.
	if rep.TasksOnArch("x86") == 0 {
		t.Fatalf("no x86 fallback executions: %+v", rep.PerUnit)
	}
}

func TestSimFaultMaxAttemptsExhausted(t *testing.T) {
	// The only unit of a 1-core platform fails transiently on every attempt:
	// the runtime must give up after MaxAttempts instead of looping forever.
	rt, err := New(Config{
		Platform:  discover.MustPlatform("xeon-1core"),
		Mode:      Sim,
		Scheduler: "eager",
		Retry:     RetryPolicy{MaxAttempts: 3},
		Faults: &FaultPlan{Events: []FaultEvent{
			{Unit: "host", AfterTasks: 1, RecoverAfter: 1e-3},
			{Unit: "host", AfterTasks: 2, RecoverAfter: 1e-3},
			{Unit: "host", AfterTasks: 3, RecoverAfter: 1e-3},
			{Unit: "host", AfterTasks: 4, RecoverAfter: 1e-3},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := noopCodelet(t, "doomed")
	if err := rt.Submit(&Task{Codelet: cl, Flops: 1e9}); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err == nil || !strings.Contains(err.Error(), "failed 3 attempts") {
		t.Fatalf("err = %v", err)
	}
}

func TestSimFaultAllUnitsGone(t *testing.T) {
	// A GPU-only codelet whose every capable unit dies: pickUnit must report
	// the blacklisting instead of deadlocking.
	rt, err := New(Config{
		Platform:  discover.MustPlatform("xeon-2gpu"),
		Mode:      Sim,
		Scheduler: "eager",
		Faults: &FaultPlan{Events: []FaultEvent{
			{Unit: "dev0", AfterTasks: 1},
			{Unit: "dev1", AfterTasks: 1},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	gpuCl, err := NewCodelet("gpu-only", Impl{Arch: "gpu"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := rt.Submit(&Task{Codelet: gpuCl, Flops: 1e9}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rt.Run(); err == nil || !strings.Contains(err.Error(), "blacklisted") {
		t.Fatalf("err = %v", err)
	}
}

// Property-based: any seeded random fault plan over the two GPUs leaves the
// CPU cores alive, so every task graph completes with exactly one successful
// execution per task, and repeated runs are bit-for-bit deterministic.
func TestQuickSimRandomFaultPlansComplete(t *testing.T) {
	f := func(seed int64, w uint8) bool {
		tiles := int(w%16) + 8
		plan := RandomFaultPlan(seed, []string{"dev0", "dev1", "host.1"}, 0.05)
		makespans := [2]float64{}
		for round := 0; round < 2; round++ {
			rt, err := New(Config{
				Platform:  discover.MustPlatform("xeon-2gpu"),
				Mode:      Sim,
				Scheduler: "dmda",
				Faults:    plan,
				Retry:     RetryPolicy{MaxAttempts: 12},
			})
			if err != nil {
				return false
			}
			submitTiles(t, rt, tiles, 2e9, 4<<20)
			rep, err := rt.Run()
			if err != nil || rep.Tasks != tiles {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			sum := 0
			for _, u := range rep.PerUnit {
				sum += u.Tasks
			}
			if sum != tiles {
				return false
			}
			makespans[round] = rep.MakespanSeconds
		}
		return makespans[0] == makespans[1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRealFaultInjectionRetriesAndBlacklists(t *testing.T) {
	var runs atomic.Int64
	// The kernel must yield so every worker goroutine gets to pick tasks
	// (on GOMAXPROCS=1 an instant kernel lets one worker drain the queue
	// before the faulty workers ever start).
	cl, err := NewCodelet("count", Impl{Arch: "x86", Func: func(*TaskContext) error {
		runs.Add(1)
		time.Sleep(2 * time.Millisecond)
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(Config{
		Platform: cpuPlatform(t, 4),
		Mode:     Real,
		Workers:  4,
		Faults: &FaultPlan{Events: []FaultEvent{
			{Unit: "worker1", AfterTasks: 1},
			{Unit: "worker2", AfterTasks: 1, RecoverAfter: 0.005},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 24
	for i := 0; i < n; i++ {
		if err := rt.Submit(&Task{Codelet: cl}); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := runs.Load(); got != n {
		t.Fatalf("kernel ran %d times, want %d (injected faults must not execute the kernel)", got, n)
	}
	if rep.FailedAttempts != 2 || rep.RetriedTasks == 0 {
		t.Fatalf("failures=%d retried=%d", rep.FailedAttempts, rep.RetriedTasks)
	}
	if rep.BlacklistedUnits() != 1 || rep.Blacklisted[0] != "worker1" {
		t.Fatalf("blacklisted = %v (worker2 recovered)", rep.Blacklisted)
	}
	if u, ok := rep.UnitByID("worker1"); !ok || u.Tasks != 0 {
		t.Fatalf("dead worker1 completed %d tasks", u.Tasks)
	}
}

// Heterogeneous workers under dmda: killing the fast worker on its first
// attempt must not lose tasks — the retry path re-routes them, setOffline
// keeps further placements away from the dead worker, and the steal sweep
// drains anything already sitting in its queue.
func TestRealDmdaFaultHeteroCompletes(t *testing.T) {
	var runs atomic.Int64
	kernel := func(*TaskContext) error {
		runs.Add(1)
		time.Sleep(2 * time.Millisecond)
		return nil
	}
	cl, err := NewCodelet("hcount",
		Impl{Arch: "x86", Func: kernel},
		Impl{Arch: "x86slow", Func: kernel})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(Config{
		Platform:  heteroPlatform(t, 3),
		Mode:      Real,
		Scheduler: "dmda",
		Workers:   4,
		Models:    perfmodel.NewStore(), // cold: exercises the warm-up paths
		Faults: &FaultPlan{Events: []FaultEvent{
			{Unit: "worker0", AfterTasks: 1},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 24
	for i := 0; i < n; i++ {
		if err := rt.Submit(&Task{Codelet: cl, Flops: 1e8}); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := runs.Load(); got != n {
		t.Fatalf("kernel ran %d times, want %d", got, n)
	}
	if rep.Tasks != n {
		t.Fatalf("report says %d tasks, want %d", rep.Tasks, n)
	}
	if rep.BlacklistedUnits() != 1 || rep.Blacklisted[0] != "worker0" {
		t.Fatalf("blacklisted = %v, want [worker0]", rep.Blacklisted)
	}
	if u, ok := rep.UnitByID("worker0"); !ok || u.Tasks != 0 {
		t.Fatalf("dead fast worker completed %d tasks", u.Tasks)
	}
}

func TestRealNaturalErrorRetried(t *testing.T) {
	var calls atomic.Int64
	cl2, err := NewCodelet("flaky", Impl{Arch: "x86", Func: func(*TaskContext) error {
		if calls.Add(1) == 1 {
			return errInjected
		}
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(Config{
		Platform: cpuPlatform(t, 2),
		Mode:     Real,
		Workers:  2,
		Retry:    RetryPolicy{MaxAttempts: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := rt.Submit(&Task{Codelet: cl2}); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.FailedAttempts != 1 || rep.RetriedTasks != 1 {
		t.Fatalf("failures=%d retried=%d", rep.FailedAttempts, rep.RetriedTasks)
	}
	if rep.BlacklistedUnits() != 0 {
		t.Fatalf("codelet errors must not blacklist workers: %v", rep.Blacklisted)
	}
}

func TestRealWatchdogConvertsHangToFailure(t *testing.T) {
	var first atomic.Bool
	first.Store(true)
	cl, err := NewCodelet("sticky", Impl{Arch: "x86", Func: func(*TaskContext) error {
		if first.CompareAndSwap(true, false) {
			time.Sleep(500 * time.Millisecond) // hangs well past the watchdog
		}
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(Config{
		Platform: cpuPlatform(t, 2),
		Mode:     Real,
		Workers:  2,
		Retry:    RetryPolicy{MaxAttempts: 4, TaskTimeout: 0.03},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := rt.Submit(&Task{Codelet: cl}); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.WatchdogTrips == 0 {
		t.Fatalf("watchdog never tripped: %+v", rep)
	}
	if rep.BlacklistedUnits() != 1 {
		t.Fatalf("hung worker not blacklisted: %v", rep.Blacklisted)
	}
}

func TestRealFailFastWithoutFaultTolerance(t *testing.T) {
	cl, err := NewCodelet("boom", Impl{Arch: "x86", Func: func(*TaskContext) error {
		return errInjected
	}})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(Config{Platform: cpuPlatform(t, 2), Mode: Real, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Submit(&Task{Codelet: cl}); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err == nil || !strings.Contains(err.Error(), "injected fault") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunLifecycleGuards(t *testing.T) {
	rt, err := New(Config{Platform: cpuPlatform(t, 1), Mode: Real, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	cl := noopCodelet(t, "once")
	if err := rt.Submit(&Task{Codelet: cl}); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	// Run twice is rejected with a descriptive error.
	if _, err := rt.Run(); err == nil || !strings.Contains(err.Error(), "Run called twice") {
		t.Fatalf("second Run: %v", err)
	}
	// Submit after Run is rejected with a descriptive error.
	if err := rt.Submit(&Task{Codelet: cl}); err == nil || !strings.Contains(err.Error(), "Submit after Run") {
		t.Fatalf("Submit after Run: %v", err)
	}
}

func TestSubmitDuringRunRejected(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{})
	cl, err := NewCodelet("slow", Impl{Arch: "x86", Func: func(*TaskContext) error {
		close(started)
		<-block
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(Config{Platform: cpuPlatform(t, 1), Mode: Real, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Submit(&Task{Codelet: cl}); err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := rt.Run()
		errCh <- err
	}()
	<-started
	if err := rt.Submit(&Task{Codelet: cl}); err == nil || !strings.Contains(err.Error(), "Run is in progress") {
		t.Fatalf("Submit during Run: %v", err)
	}
	close(block)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}

func TestBaseUnitID(t *testing.T) {
	for in, want := range map[string]string{
		"host.3": "host", "dev0": "dev0", "spe.12": "spe",
		"host": "host", "a.b.9": "a.b", "x.": "x.", "7": "7",
	} {
		if got := baseUnitID(in); got != want {
			t.Errorf("baseUnitID(%q) = %q, want %q", in, got, want)
		}
	}
}
