package taskrt

import (
	"fmt"

	"repro/internal/metrics"
)

// Runtime metrics: every engine run instruments the shared metrics.Default
// registry, so any process that links taskrt (pdlserved, benches, services
// embedding the runtime) exposes one taskrt_* family set per scrape.
// Counters are cumulative across runs in the process; per-unit labels are
// bounded by the worker/unit count, never by task count.
//
// Sim-mode runs record *virtual* seconds into the same families (labelled
// by PDL unit id rather than workerN); the busy/latency figures are only
// comparable within one mode.
//
// Hot-path cost: one histogram observation per task execution (three atomic
// ops via a per-worker cached handle); everything else is updated on the
// failure slow path or merged once at the end of the run.

// taskSecondsBuckets span µs-scale no-op dispatch tasks up to second-scale
// kernels.
var taskSecondsBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

var rtm = struct {
	runs           *metrics.CounterVec   // {mode}
	runSeconds     *metrics.CounterVec   // {mode}
	tasks          *metrics.CounterVec   // {unit}
	taskSeconds    *metrics.HistogramVec // {unit}
	busySeconds    *metrics.CounterVec   // {unit}
	busyRatio      *metrics.GaugeVec     // {unit}
	queueDepth     *metrics.GaugeVec     // {unit}
	steals         *metrics.CounterVec   // {unit}
	schedDecisions *metrics.CounterVec   // {policy, reason}
	prefetches     *metrics.Counter
	schedTransfer  *metrics.Counter
	retries        *metrics.Counter
	failures       *metrics.Counter
	watchdog       *metrics.Counter
	blacklisted    *metrics.GaugeVec // {unit}
	transfers      *metrics.Counter
	transferB      *metrics.Counter
}{
	runs: metrics.Default.CounterVec("taskrt_runs_total",
		"Completed Runtime.Run executions, by engine mode.", "mode"),
	runSeconds: metrics.Default.CounterVec("taskrt_run_seconds_total",
		"Summed makespan of completed runs (wall in real mode, virtual in sim), by engine mode.", "mode"),
	tasks: metrics.Default.CounterVec("taskrt_tasks_total",
		"Tasks executed successfully, by PDL unit id.", "unit"),
	taskSeconds: metrics.Default.HistogramVec("taskrt_task_seconds",
		"Task execution latency, by PDL unit id.", taskSecondsBuckets, "unit"),
	busySeconds: metrics.Default.CounterVec("taskrt_worker_busy_seconds_total",
		"Summed kernel execution time, by PDL unit id.", "unit"),
	busyRatio: metrics.Default.GaugeVec("taskrt_worker_busy_ratio",
		"Busy/makespan ratio of the unit in the most recent run.", "unit"),
	queueDepth: metrics.Default.GaugeVec("taskrt_queue_depth",
		"Sampled ready-queue depth, by worker deque (real mode; 'injector' is the shared inject queue).", "unit"),
	steals: metrics.Default.CounterVec("taskrt_steals_total",
		"Tasks obtained by stealing from another worker's deque, by thief unit.", "unit"),
	schedDecisions: metrics.Default.CounterVec("taskrt_sched_decisions_total",
		"Real-engine placement decisions by policy and prediction source: model = perfmodel history, fallback = observed worker mean, cold = no history anywhere.", "policy", "reason"),
	prefetches: metrics.Default.Counter("taskrt_prefetch_hints_total",
		"Prefetch hints issued by the data-aware dmda dispatcher: placements that marked a read operand resident on the target memory node ahead of dequeue."),
	schedTransfer: metrics.Default.Counter("taskrt_sched_transfer_seconds_total",
		"Modelled interconnect transfer time the data-aware dmda dispatcher charged into placement scores."),
	retries: metrics.Default.Counter("taskrt_retries_total",
		"Failed task attempts re-queued for retry."),
	failures: metrics.Default.Counter("taskrt_failed_attempts_total",
		"Task attempts that ended in failure (injected, codelet error, or watchdog)."),
	watchdog: metrics.Default.Counter("taskrt_watchdog_trips_total",
		"Hung attempts converted to failures by the watchdog."),
	blacklisted: metrics.Default.GaugeVec("taskrt_unit_blacklisted",
		"1 while the unit is blacklisted by the fault-tolerance layer, else 0.", "unit"),
	transfers: metrics.Default.Counter("taskrt_transfers_total",
		"Data transfers staged between memory nodes (sim mode)."),
	transferB: metrics.Default.Counter("taskrt_transfer_bytes_total",
		"Bytes moved between memory nodes (sim mode)."),
}

// workerUnitID names real-mode worker w in metrics and traces.
func workerUnitID(w int) string { return fmt.Sprintf("worker%d", w) }

// recordReport merges a completed run's aggregate statistics into the
// process-wide families.
func recordReport(rep *Report) {
	mode := rep.Mode.String()
	rtm.runs.With(mode).Inc()
	rtm.runSeconds.With(mode).Add(rep.MakespanSeconds)
	for _, u := range rep.PerUnit {
		rtm.tasks.With(u.ID).Add(float64(u.Tasks))
		rtm.busySeconds.With(u.ID).Add(u.BusySeconds)
		if u.Steals > 0 {
			rtm.steals.With(u.ID).Add(float64(u.Steals))
		}
		if rep.MakespanSeconds > 0 {
			rtm.busyRatio.With(u.ID).Set(u.BusySeconds / rep.MakespanSeconds)
		}
	}
	rtm.retries.Add(float64(rep.RetriedTasks))
	rtm.failures.Add(float64(rep.FailedAttempts))
	rtm.watchdog.Add(float64(rep.WatchdogTrips))
	rtm.transfers.Add(float64(rep.TransferCount))
	rtm.transferB.Add(float64(rep.TransferBytes))
	// The blacklist gauge is 1 while a unit is blacklisted, else 0 — per its
	// own help text. Every unit the run reports on and does not list as
	// blacklisted is healthy now, including units blacklisted by an earlier
	// run that have since recovered, so clear those explicitly.
	bl := make(map[string]bool, len(rep.Blacklisted))
	for _, id := range rep.Blacklisted {
		bl[id] = true
		rtm.blacklisted.With(id).Set(1)
	}
	for _, u := range rep.PerUnit {
		if !bl[u.ID] {
			rtm.blacklisted.With(u.ID).Set(0)
		}
	}
}
