package taskrt

import "testing"

// Regression: recordReport set taskrt_unit_blacklisted to 1 for blacklisted
// units but never wrote 0 for healthy ones, so a unit blacklisted in one run
// kept reporting 1 forever after it recovered. The registry is process-wide,
// so unit ids here are unique to this test.
func TestRecordReportClearsBlacklistGauge(t *testing.T) {
	rep := &Report{
		Mode:        Real,
		PerUnit:     []UnitStats{{ID: "blgauge-w0"}, {ID: "blgauge-w1"}},
		Blacklisted: []string{"blgauge-w1"},
	}
	recordReport(rep)
	if got := rtm.blacklisted.With("blgauge-w0").Value(); got != 0 {
		t.Fatalf("healthy unit gauge = %v, want 0", got)
	}
	if got := rtm.blacklisted.With("blgauge-w1").Value(); got != 1 {
		t.Fatalf("blacklisted unit gauge = %v, want 1", got)
	}

	// The unit recovers: the next run reports it healthy, and the gauge must
	// drop back to 0 even though this run blacklists nobody.
	rep = &Report{
		Mode:    Real,
		PerUnit: []UnitStats{{ID: "blgauge-w0"}, {ID: "blgauge-w1"}},
	}
	recordReport(rep)
	if got := rtm.blacklisted.With("blgauge-w1").Value(); got != 0 {
		t.Fatalf("recovered unit gauge = %v, want 0 after healthy run", got)
	}
}
