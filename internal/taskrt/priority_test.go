package taskrt

import (
	"fmt"
	"testing"

	"repro/internal/perfmodel"
)

// A batch released together must be consumed highest-priority first on an
// uncontended dmda worker: placement order is deque order, and the
// factorization submitters mark the critical chain (POTRF > TRSM > GEMM)
// with descending priorities.
func TestDmdaPushBatchOrdersByPriority(t *testing.T) {
	cl, err := NewCodelet("prio", Impl{Arch: "x86", Func: func(*TaskContext) error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	tasks := []*Task{
		{Codelet: cl, Priority: 1, Label: "p1"},
		{Codelet: cl, Priority: 5, Label: "p5"},
		{Codelet: cl, Priority: 3, Label: "p3a"},
		{Codelet: cl, Priority: 3, Label: "p3b"},
	}
	d := newDmdaDispatcher([]string{"x86"}, []int{0}, [][]xferCost{{{}}}, tasks, nil)
	batch := append([]*Task(nil), tasks...)
	d.pushBatch(-1, batch)
	// The caller's slice must keep its submission order (SubmitBatch owns it).
	for i, want := range []string{"p1", "p5", "p3a", "p3b"} {
		if batch[i].Label != want {
			t.Fatalf("pushBatch reordered the caller's slice: [%d]=%s", i, batch[i].Label)
		}
	}
	abort := make(chan struct{})
	// Equal priorities keep submission order (stable sort).
	for _, want := range []string{"p5", "p3a", "p3b", "p1"} {
		got, _ := d.take(0, abort)
		if got == nil || got.Label != want {
			t.Fatalf("take = %v, want %s", got, want)
		}
	}
}

// An unprioritised batch must be placed in submission order: the k-chain of
// an accumulation graph relies on placement order matching dependency-release
// order, and sorting a flat batch would be wasted work.
func TestDmdaPushBatchKeepsOrderWithoutPriorities(t *testing.T) {
	cl, err := NewCodelet("flat", Impl{Arch: "x86", Func: func(*TaskContext) error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	var tasks []*Task
	for i := 0; i < 8; i++ {
		tasks = append(tasks, &Task{Codelet: cl, Label: fmt.Sprintf("t%d", i)})
	}
	d := newDmdaDispatcher([]string{"x86"}, []int{0}, [][]xferCost{{{}}}, tasks, nil)
	d.pushBatch(-1, tasks)
	abort := make(chan struct{})
	for i := 0; i < 8; i++ {
		got, _ := d.take(0, abort)
		if want := fmt.Sprintf("t%d", i); got == nil || got.Label != want {
			t.Fatalf("take %d = %v, want %s", i, got, want)
		}
	}
}

// On an exact expected-finish-time tie, a prioritised task must land on the
// architecture that executes it faster — the chain's next dependency
// releases sooner — regardless of where the rotation cursor starts the scan.
func TestDmdaPriorityTieBreaksTowardFasterArch(t *testing.T) {
	cl, err := NewCodelet("tie", Impl{Arch: "fast"}, Impl{Arch: "slow"})
	if err != nil {
		t.Fatal(err)
	}
	models := perfmodel.NewStore()
	for _, sz := range []float64{1e6, 2e6, 4e6} {
		if err := models.Model("tie", "fast").Record(sz, sz/1e12); err != nil {
			t.Fatal(err)
		}
		if err := models.Model("tie", "slow").Record(sz, sz/1e12*3); err != nil {
			t.Fatal(err)
		}
	}
	task := &Task{Codelet: cl, Flops: 2e6, Priority: 1}
	d := newDmdaDispatcher([]string{"fast", "slow"}, []int{0, 0}, [][]xferCost{{{}}}, []*Task{task}, models)
	estFast, _ := d.estimate(task, 0)
	estSlow, _ := d.estimate(task, 1)
	if estFast <= 0 || estSlow <= estFast {
		t.Fatalf("model estimates fast=%d slow=%d, want 0 < fast < slow", estFast, estSlow)
	}
	// Load the fast worker until both EFTs are exactly equal.
	d.workers[0].outstanding.Store(estSlow - estFast)
	// choose rotates its scan start every call: the hint must win from both
	// starting points.
	for i := 0; i < 4; i++ {
		w, _, _, _ := d.choose(task)
		if w != 0 {
			t.Fatalf("call %d: prioritised task tied on EFT placed on slow worker", i)
		}
	}
	// Without the hint the tie falls to the rotation: both workers must be
	// reachable (the hint is strictly a tie-break, not a fast-arch magnet).
	task.Priority = 0
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		w, _, _, _ := d.choose(task)
		seen[w] = true
	}
	if !seen[1] {
		t.Fatal("unprioritised tie never reached the slow worker: tie-break is no longer rotation-spread")
	}
}
