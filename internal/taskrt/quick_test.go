package taskrt

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/discover"
	"repro/internal/perfmodel"
	"repro/internal/trace"
)

// buildRandomDAG submits a pseudo-random task graph: layers of tasks where
// each task reads a random subset of the previous layer's outputs and
// writes its own. Returns the number of tasks and the serial-work lower
// bound (total flops / fastest aggregate rate is not needed; we check
// structural invariants instead).
func buildRandomDAG(t testing.TB, rt *Runtime, seed int64, layers, width int) int {
	t.Helper()
	return buildRandomDAGWith(t, rt, dgemmCodelet(t), seed, layers, width)
}

// buildRandomDAGWith is buildRandomDAG with a caller-chosen codelet, so
// real-mode tests can count executions from the implementation function.
func buildRandomDAGWith(t testing.TB, rt *Runtime, cl *Codelet, seed int64, layers, width int) int {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var prev []*Handle
	total := 0
	for l := 0; l < layers; l++ {
		var cur []*Handle
		for w := 0; w < width; w++ {
			out := rt.NewHandle("h", 1<<18, nil)
			cur = append(cur, out)
			accesses := []Access{W(out)}
			if len(prev) > 0 {
				// Read 1..3 random handles from the previous layer.
				n := 1 + rng.Intn(3)
				seen := map[int]bool{}
				for k := 0; k < n; k++ {
					i := rng.Intn(len(prev))
					if seen[i] {
						continue
					}
					seen[i] = true
					accesses = append(accesses, R(prev[i]))
				}
			}
			if err := rt.Submit(&Task{
				Codelet:  cl,
				Accesses: accesses,
				Flops:    float64(1+rng.Intn(4)) * 1e8,
			}); err != nil {
				t.Fatal(err)
			}
			total++
		}
		prev = cur
	}
	return total
}

// Property-based: every random DAG completes on every scheduler, executes
// each task exactly once, and is deterministic per (graph, scheduler).
func TestQuickRandomDAGsComplete(t *testing.T) {
	scheds := []string{"eager", "ws", "dmda", "heft", "random"}
	f := func(seed int64, l, w uint8) bool {
		layers := int(l%4) + 1
		width := int(w%5) + 1
		for _, sched := range scheds {
			makespans := make([]float64, 2)
			for round := 0; round < 2; round++ {
				rt, err := New(Config{
					Platform:  discover.MustPlatform("xeon-2gpu"),
					Mode:      Sim,
					Scheduler: sched,
				})
				if err != nil {
					return false
				}
				want := buildRandomDAG(t, rt, seed, layers, width)
				rep, err := rt.Run()
				if err != nil {
					return false
				}
				if rep.Tasks != want {
					return false
				}
				sum := 0
				for _, u := range rep.PerUnit {
					sum += u.Tasks
				}
				if sum != want {
					return false
				}
				makespans[round] = rep.MakespanSeconds
			}
			if makespans[0] != makespans[1] {
				return false // nondeterministic
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property-based: the real work-stealing engine executes every task of a
// random DAG exactly once — no task is lost in a deque, stolen twice, or
// double-run off the injector — and the per-unit task and steal counts are
// consistent with the totals. Task bodies sleep briefly so workers genuinely
// interleave (and steal) even on a single-core host.
func TestQuickRealWSExactlyOnce(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		var mu sync.Mutex
		counts := map[*Task]int{}
		cl, err := NewCodelet("count", Impl{Arch: "x86", Func: func(tc *TaskContext) error {
			time.Sleep(200 * time.Microsecond)
			mu.Lock()
			counts[tc.Task]++
			mu.Unlock()
			return nil
		}})
		if err != nil {
			t.Fatal(err)
		}
		rt, err := New(Config{
			Platform:  cpuPlatform(t, 4),
			Mode:      Real,
			Scheduler: "ws",
			Workers:   4,
		})
		if err != nil {
			t.Fatal(err)
		}
		want := buildRandomDAGWith(t, rt, cl, seed, 4, 6)
		rep, err := rt.Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Tasks != want {
			t.Fatalf("seed %d: report says %d tasks, submitted %d", seed, rep.Tasks, want)
		}
		if len(counts) != want {
			t.Fatalf("seed %d: %d distinct tasks executed, want %d", seed, len(counts), want)
		}
		for task, n := range counts {
			if n != 1 {
				t.Errorf("seed %d: task %q executed %d times", seed, task.Label, n)
			}
		}
		sumTasks, sumSteals := 0, 0
		for _, u := range rep.PerUnit {
			sumTasks += u.Tasks
			sumSteals += u.Steals
		}
		if sumTasks != want {
			t.Errorf("seed %d: per-unit task counts sum to %d, want %d", seed, sumTasks, want)
		}
		if sumSteals != rep.Steals {
			t.Errorf("seed %d: per-unit steals sum to %d, report total %d", seed, sumSteals, rep.Steals)
		}
	}
}

// heteroPlatform builds one fast "x86" core plus `slow` cores of a
// deliberately slow "x86slow" architecture, for tests that exercise
// model-driven placement across unequal workers.
func heteroPlatform(t testing.TB, slow int) *core.Platform {
	t.Helper()
	pl, err := core.NewBuilder("hetero").
		Master("fast", core.Arch("x86"), core.Qty(1)).
		Master("slow", core.Arch("x86slow"), core.Qty(slow)).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

// Property-based: under dmda with skewed worker speeds (one fast arch, three
// 20× slower ones) and pre-warmed performance models, every task of a random
// DAG still executes exactly once, every placement decision is model-driven,
// and the majority of placements target the fast worker. Executions may still
// land on slow workers — idle workers legitimately steal — so the assertion
// is on the recorded Place decisions, not on who ran what.
func TestQuickRealDmdaHeteroPlacement(t *testing.T) {
	const slowdown = 20.0
	var mu sync.Mutex
	counts := map[*Task]int{}
	kernel := func(scale float64) func(*TaskContext) error {
		return func(tc *TaskContext) error {
			// flops/1e12 seconds: 0.1–0.4 ms for the DAG generator's sizes.
			time.Sleep(time.Duration(tc.Task.Flops / 1e12 * scale * float64(time.Second)))
			mu.Lock()
			counts[tc.Task]++
			mu.Unlock()
			return nil
		}
	}
	cl, err := NewCodelet("hetero",
		Impl{Arch: "x86", Func: kernel(1)},
		Impl{Arch: "x86slow", Func: kernel(slowdown)})
	if err != nil {
		t.Fatal(err)
	}
	// Pre-warm both archs' models so dmda predicts from history immediately
	// instead of round-robining through its cold-start phase.
	models := perfmodel.NewStore()
	for _, sz := range []float64{1e8, 2e8, 4e8} {
		if err := models.Model("hetero", "x86").Record(sz, sz/1e12); err != nil {
			t.Fatal(err)
		}
		if err := models.Model("hetero", "x86slow").Record(sz, sz/1e12*slowdown); err != nil {
			t.Fatal(err)
		}
	}
	tr := trace.New()
	rt, err := New(Config{
		Platform:  heteroPlatform(t, 3),
		Mode:      Real,
		Scheduler: "dmda",
		Workers:   4,
		Models:    models,
		Trace:     tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := buildRandomDAGWith(t, rt, cl, 42, 5, 6)
	rep, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tasks != want || len(counts) != want {
		t.Fatalf("report %d tasks, %d distinct executed, submitted %d", rep.Tasks, len(counts), want)
	}
	for task, n := range counts {
		if n != 1 {
			t.Errorf("task %q executed %d times", task.Label, n)
		}
	}
	placed, model, fastModel := 0, 0, 0
	for _, e := range tr.Events() {
		if e.Kind != trace.Place {
			continue
		}
		placed++
		if e.From == "model" {
			model++
			if e.Worker == 0 {
				fastModel++
			}
		}
	}
	if placed != want {
		t.Fatalf("%d Place events, want one per task (%d)", placed, want)
	}
	if model != placed {
		t.Errorf("%d/%d placements model-driven, want all (models were pre-warmed)", model, placed)
	}
	if 2*fastModel <= model {
		t.Errorf("fast worker received %d/%d model-warm placements, want a majority", fastModel, model)
	}
}

// Property-based: makespan is never below the critical-path bound (the
// longest dependency chain through a single fastest unit) nor below the
// total-work bound (all flops on all units at full speed).
func TestQuickMakespanLowerBounds(t *testing.T) {
	f := func(seed int64, w uint8) bool {
		width := int(w%4) + 1
		const layers = 3
		rt, err := New(Config{
			Platform:  discover.MustPlatform("xeon-2gpu"),
			Mode:      Sim,
			Scheduler: "dmda",
		})
		if err != nil {
			return false
		}
		n := buildRandomDAG(t, rt, seed, layers, width)
		totalFlops := 0.0
		for _, task := range rt.tasks {
			totalFlops += task.Flops
		}
		rep, err := rt.Run()
		if err != nil || rep.Tasks != n {
			return false
		}
		// Aggregate rate bound: gtx480 (109.2) + gtx285 (66.375) + 8 cores
		// (8×9.7888) GFLOP/s.
		aggregate := (109.2 + 66.375 + 8*9.7888) * 1e9
		if rep.MakespanSeconds < totalFlops/aggregate {
			return false
		}
		// Layer bound: layers are serialised via the dependency structure
		// only if each layer reads the previous; our generator guarantees
		// that for width=1 chains.
		return rep.MakespanSeconds > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
