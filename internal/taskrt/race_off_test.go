//go:build !race

package taskrt

// raceEnabled reports whether the race detector instruments this build, for
// tests whose allocation counting it would skew.
const raceEnabled = false
