package taskrt

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// errInjected marks an injected fault in real mode. Injected failures fire
// at task launch, before the kernel touches data, so retries operate on
// unmodified payloads.
var errInjected = fmt.Errorf("taskrt: injected fault")

// runReal executes the task graph on goroutine workers. Only implementations
// with a non-nil Func whose architecture matches the platform's Master
// architecture are eligible — real GPUs are not available, which is exactly
// why Sim mode exists. Dependencies are enforced by counters; ready tasks
// flow through a channel drained by the worker pool (StarPU's eager policy).
//
// With fault tolerance active (Config.Faults/Retry/Tracker) the engine
// additionally: honours injected worker faults from the FaultPlan (unit ids
// "worker0", "worker1", ...), retries failed tasks on other workers with
// capped exponential backoff, blacklists failed workers (re-admitting them
// after FaultEvent.RecoverAfter), and bounds every execution with a watchdog
// timeout derived from the perfmodel estimate so a hung kernel cannot
// deadlock Run. Without it, the first codelet error aborts the run — the
// original fail-fast contract.
func (rt *Runtime) runReal() (*Report, error) {
	if len(rt.cfg.Platform.Masters) == 0 {
		return nil, fmt.Errorf("taskrt: platform has no master")
	}
	hostArch := rt.cfg.Platform.Masters[0].Architecture()
	workers := rt.cfg.Workers
	if workers <= 0 {
		workers = 0
		for _, m := range rt.cfg.Platform.Masters {
			workers += m.EffectiveQuantity()
		}
	}
	if workers < 1 {
		workers = 1
	}

	// Pre-validate: every task must have a runnable implementation.
	for _, t := range rt.tasks {
		im := t.Codelet.ImplFor(hostArch)
		if im == nil || im.Func == nil {
			return nil, fmt.Errorf("taskrt: codelet %q has no real implementation for host arch %q", t.Codelet.Name, hostArch)
		}
	}

	ft := rt.ftEnabled()
	policy := rt.cfg.Retry.withDefaults()
	faults := make([]*faultQueue, workers)
	for w := 0; w < workers; w++ {
		if evs := rt.cfg.Faults.forUnit(fmt.Sprintf("worker%d", w)); len(evs) > 0 {
			faults[w] = &faultQueue{events: evs}
		}
	}

	remaining := make([]int, len(rt.tasks))
	// Capacity bound: a task occupies at most one slot at a time, even
	// across retries.
	ready := make(chan *Task, len(rt.tasks))
	for i, t := range rt.tasks {
		remaining[i] = len(t.deps)
		if remaining[i] == 0 {
			ready <- t
		}
	}

	var (
		mu             sync.Mutex
		firstErr       error
		pending        = len(rt.tasks) // tasks not yet finally resolved
		alive          = workers
		recovering     = 0
		busy           = make([]time.Duration, workers)
		count          = make([]int, workers)
		startedOn      = make([]int, workers)
		attempts       = make([]int, len(rt.tasks))
		retriedSet     = map[int]bool{}
		failedAttempts = 0
		watchdogTrips  = 0
		blacklisted    = map[string]bool{}
	)
	done := make(chan struct{})  // closed when every task is resolved
	abort := make(chan struct{}) // closed on the first fatal error
	fail := func(err error) { // caller holds mu
		if firstErr == nil {
			firstErr = err
			close(abort)
		}
	}
	resolve := func() { // caller holds mu: one task reached a final state
		pending--
		if pending == 0 && firstErr == nil {
			close(done)
		}
	}
	release := func(t *Task) { // caller holds mu: successful completion
		for _, dep := range t.dependents {
			remaining[dep.id]--
			if remaining[dep.id] == 0 {
				ready <- dep
			}
		}
	}
	requeue := func(t *Task, after time.Duration) {
		time.AfterFunc(after, func() {
			select {
			case ready <- t:
			case <-abort:
			}
		})
	}

	start := time.Now()
	traceEvent := func(kind trace.Kind, unit, label string, s, e time.Time) {
		if rt.cfg.Trace == nil {
			return
		}
		rt.cfg.Trace.Record(trace.Event{
			Kind: kind, Unit: unit, Label: label,
			Start: s.Sub(start).Seconds(), End: e.Sub(start).Seconds(),
		})
	}

	var wgWorkers sync.WaitGroup
	wgWorkers.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wgWorkers.Done()
			unitID := fmt.Sprintf("worker%d", worker)
			for {
				var t *Task
				select {
				case t = <-ready:
				case <-done:
					return
				case <-abort:
					return
				}

				// Injected fault check: fires before the kernel runs, so
				// payloads stay untouched and the retry is safe.
				var inj *FaultEvent
				mu.Lock()
				startedOn[worker]++
				if ft && faults[worker] != nil {
					if f := faults[worker].pending(); f != nil {
						if (f.AfterTasks > 0 && startedOn[worker] >= f.AfterTasks) ||
							(f.AtTime > 0 && time.Since(start).Seconds() >= f.AtTime) {
							faults[worker].consume()
							inj = f
						}
					}
				}
				mu.Unlock()

				if inj != nil {
					t0 := time.Now()
					if inj.Hang {
						// A hung launch: the watchdog converts it into a
						// failure after the timeout.
						d := rt.taskTimeout(t, hostArch, policy)
						if d <= 0 {
							d = policy.backoffDuration(policy.MaxAttempts) // bounded stand-in
						}
						select {
						case <-time.After(d):
						case <-abort:
							return
						}
						mu.Lock()
						watchdogTrips++
						mu.Unlock()
					}
					traceEvent(trace.Failure, unitID, taskLabel(t), t0, time.Now())
					mu.Lock()
					failedAttempts++
					retriedSet[t.id] = true
					attempts[t.id]++
					if attempts[t.id] >= policy.MaxAttempts {
						fail(fmt.Errorf("taskrt: task %q (%s) failed %d attempts, last on %s: %w",
							t.Codelet.Name, t.Label, attempts[t.id], unitID, errInjected))
						resolve()
						mu.Unlock()
						return
					}
					requeue(t, policy.backoffDuration(attempts[t.id]))
					// Blacklist this worker; other workers keep draining.
					blacklisted[unitID] = true
					alive--
					if inj.RecoverAfter > 0 {
						recovering++
					}
					if alive == 0 && recovering == 0 && pending > 0 {
						fail(fmt.Errorf("taskrt: all %d workers blacklisted with %d task(s) pending", workers, pending))
					}
					mu.Unlock()
					now := time.Now()
					traceEvent(trace.Blacklist, unitID, "", now, now)
					if rt.cfg.Tracker != nil {
						_ = rt.cfg.Tracker.SetOffline(unitID) // best effort: tracker may not know worker ids
					}
					if inj.RecoverAfter <= 0 {
						return // permanently dead
					}
					select {
					case <-time.After(time.Duration(inj.RecoverAfter * float64(time.Second))):
					case <-abort:
						return
					}
					mu.Lock()
					delete(blacklisted, unitID)
					alive++
					recovering--
					mu.Unlock()
					now = time.Now()
					traceEvent(trace.Recover, unitID, "", now, now)
					if rt.cfg.Tracker != nil {
						_ = rt.cfg.Tracker.SetOnline(unitID)
					}
					continue
				}

				im := t.Codelet.ImplFor(hostArch)
				tc := &TaskContext{WorkerID: worker, Arch: hostArch, Task: t}
				for _, a := range t.Accesses {
					tc.Data = append(tc.Data, a.Handle.Payload)
				}
				t0 := time.Now()
				var err error
				wdog := false
				if timeout := rt.taskTimeout(t, hostArch, policy); ft && timeout > 0 {
					// Watchdog: run the kernel aside and abandon it past the
					// timeout (goroutines cannot be killed; the stuck kernel
					// is orphaned and its worker blacklisted).
					res := make(chan error, 1)
					go func() { res <- im.Func(tc) }()
					select {
					case err = <-res:
					case <-time.After(timeout):
						err = fmt.Errorf("taskrt: watchdog: task %q (%s) exceeded %v on %s",
							t.Codelet.Name, t.Label, timeout, unitID)
						wdog = true
					}
				} else {
					err = im.Func(tc)
				}
				d := time.Since(t0)
				if err == nil {
					traceEvent(trace.Task, unitID, taskLabel(t), t0, t0.Add(d))
					if rt.cfg.Models != nil && t.Flops > 0 && d > 0 {
						_ = rt.cfg.Models.Model(t.Codelet.Name, hostArch).Record(t.Flops, d.Seconds())
					}
					mu.Lock()
					busy[worker] += d
					count[worker]++
					release(t)
					resolve()
					mu.Unlock()
					continue
				}
				// Failure path.
				traceEvent(trace.Failure, unitID, taskLabel(t), t0, t0.Add(d))
				mu.Lock()
				busy[worker] += d
				if !ft {
					// Fail fast: the original no-recovery contract.
					fail(fmt.Errorf("taskrt: task %q (%s): %w", t.Codelet.Name, t.Label, err))
					resolve()
					mu.Unlock()
					return
				}
				failedAttempts++
				retriedSet[t.id] = true
				attempts[t.id]++
				if wdog {
					watchdogTrips++
				}
				if attempts[t.id] >= policy.MaxAttempts {
					fail(fmt.Errorf("taskrt: task %q (%s) failed %d attempts: %w", t.Codelet.Name, t.Label, attempts[t.id], err))
					resolve()
					mu.Unlock()
					return
				}
				requeue(t, policy.backoffDuration(attempts[t.id]))
				if wdog {
					// A hung kernel condemns its worker: the unit cannot be
					// trusted (the orphaned goroutine may still hold it).
					blacklisted[unitID] = true
					alive--
					if alive == 0 && recovering == 0 && pending > 0 {
						fail(fmt.Errorf("taskrt: all %d workers blacklisted with %d task(s) pending", workers, pending))
					}
					mu.Unlock()
					now := time.Now()
					traceEvent(trace.Blacklist, unitID, "", now, now)
					if rt.cfg.Tracker != nil {
						_ = rt.cfg.Tracker.SetOffline(unitID)
					}
					return
				}
				mu.Unlock()
			}
		}(w)
	}

	select {
	case <-done:
	case <-abort:
	}
	elapsed := time.Since(start)
	wgWorkers.Wait() // let in-flight attempts finish before reading stats

	mu.Lock()
	defer mu.Unlock()
	if firstErr != nil {
		return nil, firstErr
	}
	rep := &Report{
		Mode:            Real,
		Scheduler:       rt.cfg.Scheduler,
		Tasks:           len(rt.tasks),
		MakespanSeconds: elapsed.Seconds(),
		FailedAttempts:  failedAttempts,
		RetriedTasks:    len(retriedSet),
		WatchdogTrips:   watchdogTrips,
	}
	for id := range blacklisted {
		rep.Blacklisted = append(rep.Blacklisted, id)
	}
	sort.Strings(rep.Blacklisted)
	for w := 0; w < workers; w++ {
		rep.PerUnit = append(rep.PerUnit, UnitStats{
			ID:          fmt.Sprintf("worker%d", w),
			Arch:        hostArch,
			Tasks:       count[w],
			BusySeconds: busy[w].Seconds(),
		})
	}
	return rep, nil
}

// taskTimeout derives the real-mode watchdog timeout for a task: perfmodel
// estimate × WatchdogFactor when history exists, else the absolute
// RetryPolicy.TaskTimeout (0 = no watchdog).
func (rt *Runtime) taskTimeout(t *Task, arch string, policy RetryPolicy) time.Duration {
	if rt.cfg.Models != nil && t.Flops > 0 {
		if est, ok := rt.cfg.Models.Model(t.Codelet.Name, arch).Estimate(t.Flops); ok {
			return time.Duration(est * policy.WatchdogFactor * float64(time.Second))
		}
	}
	if policy.TaskTimeout > 0 {
		return time.Duration(policy.TaskTimeout * float64(time.Second))
	}
	return 0
}

// HostArch returns the architecture tag real-mode kernels must target for
// the given platform.
func HostArch(pl *core.Platform) string {
	if len(pl.Masters) == 0 {
		return ""
	}
	return pl.Masters[0].Architecture()
}
