package taskrt

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// runReal executes the task graph on goroutine workers. Only implementations
// with a non-nil Func whose architecture matches the platform's Master
// architecture are eligible — real GPUs are not available, which is exactly
// why Sim mode exists. Dependencies are enforced by counters; ready tasks
// flow through a channel drained by the worker pool (StarPU's eager policy).
func (rt *Runtime) runReal() (*Report, error) {
	if len(rt.cfg.Platform.Masters) == 0 {
		return nil, fmt.Errorf("taskrt: platform has no master")
	}
	hostArch := rt.cfg.Platform.Masters[0].Architecture()
	workers := rt.cfg.Workers
	if workers <= 0 {
		workers = 0
		for _, m := range rt.cfg.Platform.Masters {
			workers += m.EffectiveQuantity()
		}
	}
	if workers < 1 {
		workers = 1
	}

	// Pre-validate: every task must have a runnable implementation.
	for _, t := range rt.tasks {
		im := t.Codelet.ImplFor(hostArch)
		if im == nil || im.Func == nil {
			return nil, fmt.Errorf("taskrt: codelet %q has no real implementation for host arch %q", t.Codelet.Name, hostArch)
		}
	}

	remaining := make([]int, len(rt.tasks))
	ready := make(chan *Task, len(rt.tasks))
	for i, t := range rt.tasks {
		remaining[i] = len(t.deps)
		if remaining[i] == 0 {
			ready <- t
		}
	}

	var (
		mu        sync.Mutex
		firstErr  error
		completed int
		busy      = make([]time.Duration, workers)
		count     = make([]int, workers)
		wg        sync.WaitGroup
	)
	done := make(chan struct{})
	wg.Add(len(rt.tasks))
	go func() {
		wg.Wait()
		close(done)
	}()

	start := time.Now()
	for w := 0; w < workers; w++ {
		go func(worker int) {
			for {
				var t *Task
				select {
				case t = <-ready:
				case <-done:
					return
				}
				im := t.Codelet.ImplFor(hostArch)
				mu.Lock()
				failed := firstErr != nil
				mu.Unlock()
				if !failed {
					tc := &TaskContext{WorkerID: worker, Arch: hostArch, Task: t}
					for _, a := range t.Accesses {
						tc.Data = append(tc.Data, a.Handle.Payload)
					}
					t0 := time.Now()
					err := im.Func(tc)
					d := time.Since(t0)
					if rt.cfg.Trace != nil {
						label := t.Label
						if label == "" {
							label = t.Codelet.Name
						}
						rt.cfg.Trace.Record(trace.Event{
							Kind:  trace.Task,
							Unit:  fmt.Sprintf("worker%d", worker),
							Label: label,
							Start: t0.Sub(start).Seconds(),
							End:   t0.Add(d).Sub(start).Seconds(),
						})
					}
					mu.Lock()
					busy[worker] += d
					count[worker]++
					if err != nil && firstErr == nil {
						firstErr = fmt.Errorf("taskrt: task %q (%s): %w", t.Codelet.Name, t.Label, err)
					}
					mu.Unlock()
					if err == nil && rt.cfg.Models != nil && t.Flops > 0 && d > 0 {
						_ = rt.cfg.Models.Model(t.Codelet.Name, hostArch).Record(t.Flops, d.Seconds())
					}
				}
				// Release dependents even on failure to avoid deadlock.
				mu.Lock()
				completed++
				for _, dep := range t.dependents {
					remaining[dep.id]--
					if remaining[dep.id] == 0 {
						ready <- dep
					}
				}
				mu.Unlock()
				wg.Done()
			}
		}(w)
	}
	<-done
	elapsed := time.Since(start)

	if firstErr != nil {
		return nil, firstErr
	}
	rep := &Report{
		Mode:            Real,
		Scheduler:       rt.cfg.Scheduler,
		Tasks:           len(rt.tasks),
		MakespanSeconds: elapsed.Seconds(),
	}
	for w := 0; w < workers; w++ {
		rep.PerUnit = append(rep.PerUnit, UnitStats{
			ID:          fmt.Sprintf("worker%d", w),
			Arch:        hostArch,
			Tasks:       count[w],
			BusySeconds: busy[w].Seconds(),
		})
	}
	return rep, nil
}

// HostArch returns the architecture tag real-mode kernels must target for
// the given platform.
func HostArch(pl *core.Platform) string {
	if len(pl.Masters) == 0 {
		return ""
	}
	return pl.Masters[0].Architecture()
}
