package taskrt

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/perfmodel"
	"repro/internal/trace"
)

// errInjected marks an injected fault in real mode. Injected failures fire
// at task launch, before the kernel touches data, so retries operate on
// unmodified payloads.
var errInjected = fmt.Errorf("taskrt: injected fault")

// runReal executes the task graph on goroutine workers. Only implementations
// with a non-nil Func whose architecture matches a worker's architecture are
// eligible — real GPUs are not available, which is exactly why Sim mode
// exists. Each worker inherits the architecture of the platform Master it
// expands from (masters in declaration order, one worker per effective unit;
// an explicit Config.Workers override truncates or pads with the first
// master's architecture), so heterogeneous platforms run fast and slow
// kernel variants side by side.
//
// Dispatch is work-stealing by default: each worker owns a Chase-Lev deque,
// completions push newly-ready dependents onto the completing worker's own
// deque (the locality hint — the dependent's inputs are still hot in that
// worker's cache), and idle workers steal FIFO from victims. Scheduler
// "eager" selects the historical single-shared-channel dispatch instead, so
// the two can be compared in one binary (see dispatch.go), and "dmda" routes
// each push to the worker with the earliest model-predicted finish time —
// perfmodel history per worker architecture plus interconnect-modelled
// transfer cost for operands not resident on the worker's memory node (one
// node per platform master, costs from the PDL's declared interconnects) —
// letting the steal path mop up mispredictions. The hot path is lock-free
// and batched: dependency counters and the pending count are atomics,
// dependents released by one completion enter the dispatcher through a
// single pushBatch (one semaphore round per batch), and per-worker
// statistics live in worker-owned state merged after shutdown — the
// engine's one mutex now guards only the failure slow path.
//
// With fault tolerance active (Config.Faults/Retry/Tracker) the engine
// additionally: honours injected worker faults from the FaultPlan (unit ids
// "worker0", "worker1", ...), retries failed tasks on other workers with
// capped exponential backoff, blacklists failed workers (re-admitting them
// after FaultEvent.RecoverAfter), and bounds every execution with a watchdog
// timeout derived from the perfmodel estimate so a hung kernel cannot
// deadlock Run. A blacklisted worker's deque stays stealable, so its queued
// tasks migrate to surviving workers. Retry backoff timers are registered
// and stopped on abort, so a failed run never leaves timers firing into a
// dead run. Without fault tolerance, the first codelet error aborts the run
// — the original fail-fast contract.
func (rt *Runtime) runReal() (*Report, error) {
	if len(rt.cfg.Platform.Masters) == 0 {
		return nil, fmt.Errorf("taskrt: platform has no master")
	}
	workers := rt.cfg.Workers
	if workers <= 0 {
		workers = 0
		for _, m := range rt.cfg.Platform.Masters {
			workers += m.EffectiveQuantity()
		}
	}
	if workers < 1 {
		workers = 1
	}
	archs := workerArchs(rt.cfg.Platform, workers)

	// Pre-validate: every task must have a runnable implementation for every
	// worker architecture — eager and work-stealing dispatch route blindly,
	// so any worker may end up with any task.
	var distinct []string
	seenArch := map[string]bool{}
	for _, a := range archs {
		if !seenArch[a] {
			seenArch[a] = true
			distinct = append(distinct, a)
		}
	}
	for _, t := range rt.tasks {
		for _, a := range distinct {
			im := t.Codelet.ImplFor(a)
			if im == nil || im.Func == nil {
				return nil, fmt.Errorf("taskrt: codelet %q has no real implementation for worker arch %q", t.Codelet.Name, a)
			}
		}
	}

	ft := rt.ftEnabled()
	policy := rt.cfg.Retry.withDefaults()

	// Worker-owned hot state: no lock is ever taken to update it. The main
	// goroutine reads it only after wgWorkers.Wait().
	type workerState struct {
		arch      string
		busy      time.Duration
		count     int
		startedOn int // attempts started, drives AfterTasks fault triggers
		faults    *faultQueue
		// ready buffers the dependents one completion unblocks, so they reach
		// the dispatcher as a single batch. Worker-owned, reused across tasks.
		ready []*Task
	}
	ws := make([]workerState, workers)
	for w := 0; w < workers; w++ {
		ws[w].arch = archs[w]
		if evs := rt.cfg.Faults.forUnit(workerUnitID(w)); len(evs) > 0 {
			ws[w].faults = &faultQueue{events: evs}
		}
	}

	var disp dispatcher
	switch rt.cfg.Scheduler {
	case "eager":
		disp = newChanDispatcher(workers, len(rt.tasks))
	case "dmda":
		// dmda is model-driven: without a caller-provided store it still
		// self-calibrates within the run (the engine records every execution
		// into Models below), so give it a private one rather than running
		// the whole graph on the cold/fallback paths.
		if rt.cfg.Models == nil {
			rt.cfg.Models = perfmodel.NewStore()
		}
		nodes, nodeIDs := workerNodes(rt.cfg.Platform, workers)
		costs := interconnectCosts(rt.cfg.Platform, nodeIDs)
		disp = newDmdaDispatcher(archs, nodes, costs, rt.tasks, rt.cfg.Models)
	default:
		disp = newStealDispatcher(workers, len(rt.tasks))
	}

	// Dependency counters and the unresolved-task count are atomics: the
	// completion hot path touches no lock.
	remaining := make([]atomic.Int32, len(rt.tasks))
	for i, t := range rt.tasks {
		remaining[i].Store(int32(len(t.deps)))
	}

	var (
		mu             sync.Mutex // guards the failure slow path below
		firstErr       error
		attempts       = make([]int, len(rt.tasks))
		retriedSet     = map[int]bool{}
		failedAttempts = 0
		watchdogTrips  = 0
		alive          = workers
		recovering     = 0
		blacklisted    = map[string]bool{}
		timers         = map[*time.Timer]struct{}{} // outstanding requeue timers

		failed  atomic.Bool
		pending atomic.Int64 // tasks not yet finally resolved
	)
	pending.Store(int64(len(rt.tasks)))
	done := make(chan struct{})  // closed when every task is resolved
	abort := make(chan struct{}) // closed on the first fatal error
	if len(rt.tasks) == 0 {
		close(done)
	}
	fail := func(err error) { // caller holds mu
		if firstErr == nil {
			firstErr = err
			failed.Store(true)
			close(abort)
			// Stop outstanding retry timers: nothing may fire into a dead run.
			for tm := range timers {
				tm.Stop()
			}
			clear(timers)
		}
	}
	resolve := func() { // one task reached a final state
		if pending.Add(-1) == 0 && !failed.Load() {
			close(done)
		}
	}
	release := func(worker int, t *Task) { // successful completion on worker
		buf := ws[worker].ready[:0]
		for _, dep := range t.dependents {
			if remaining[dep.id].Add(-1) == 0 {
				buf = append(buf, dep)
			}
		}
		ws[worker].ready = buf
		if len(buf) > 0 {
			disp.pushBatch(worker, buf)
		}
	}
	requeue := func(t *Task, after time.Duration) { // caller holds mu
		if firstErr != nil {
			return // aborting: the retry would fire into a dead run
		}
		var tm *time.Timer
		tm = time.AfterFunc(after, func() {
			mu.Lock()
			delete(timers, tm)
			dead := firstErr != nil
			mu.Unlock()
			if !dead {
				disp.push(-1, t)
			}
		})
		timers[tm] = struct{}{}
	}

	// Causal-span preparation: resolve every task's parent ids once, up
	// front, so the recording hot path copies a shared slice header instead
	// of walking t.deps under load.
	tracing := rt.cfg.Trace != nil
	var parents [][]int
	shardCap := 0
	if tracing {
		// One flat backing array for all parent lists: a single allocation
		// instead of one tiny slice per task.
		total := 0
		for _, t := range rt.tasks {
			total += len(t.deps)
		}
		backing := make([]int, 0, total)
		parents = make([][]int, len(rt.tasks))
		for _, t := range rt.tasks {
			if len(t.deps) == 0 {
				continue
			}
			off := len(backing)
			for _, d := range t.deps {
				backing = append(backing, d.id)
			}
			parents[t.id] = backing[off:len(backing):len(backing)]
		}
		// Bound each shard to the run's size (x2 for retry/steal/failure
		// events) rather than the 64k default, so a worker can never buffer
		// more than the run could have produced.
		shardCap = 2*len(rt.tasks) + 64
		if shardCap > trace.DefaultShardCapacity {
			shardCap = trace.DefaultShardCapacity
		}
		rt.cfg.Trace.SetMeta("workers", strconv.Itoa(workers))
	}

	start := time.Now()

	// dmda placement decisions are observable: the dispatcher records one
	// Place event per routed task directly into the trace (pushes happen on
	// whichever goroutine completed the parent, so no worker shard applies;
	// the push path already pays O(workers) scoring, one mutexed append is
	// in proportion).
	if dd, ok := disp.(*dmdaDispatcher); ok && tracing {
		tr := rt.cfg.Trace
		dd.onPlace = func(w int, t *Task, reason string, xferNanos int64) {
			now := time.Since(start).Seconds()
			tr.Record(trace.Event{
				Kind: trace.Place, Unit: workerUnitID(w), Worker: w,
				TaskID: t.id, Label: taskLabel(t),
				Start: now, End: now, From: reason,
				Transfer: float64(xferNanos) / 1e9,
				Attempt:  int(t.attempt.Load()),
			})
		}
	}

	// Seed the dispatcher with the dependency-free tasks, as one batch.
	seeds := make([]*Task, 0, len(rt.tasks))
	for i, t := range rt.tasks {
		if remaining[i].Load() == 0 {
			seeds = append(seeds, t)
		}
	}
	if len(seeds) > 0 {
		disp.pushBatch(-1, seeds)
	}

	// Queue-depth sampler: a low-rate observer feeding the taskrt_queue_depth
	// gauges while the run is live. Depth reads are racy snapshots (atomic
	// deque indices, channel length) and never touch the dispatch hot path.
	samplerStop := make(chan struct{})
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		gauges := make([]*metrics.Gauge, workers)
		for w := range gauges {
			gauges[w] = rtm.queueDepth.With(workerUnitID(w))
		}
		injector := rtm.queueDepth.With("injector")
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-samplerStop:
				for _, g := range gauges {
					g.Set(0)
				}
				injector.Set(0)
				return
			case <-tick.C:
				for w, g := range gauges {
					g.Set(float64(disp.depth(w)))
				}
				injector.Set(float64(disp.depth(-1)))
			}
		}
	}()

	var wgWorkers sync.WaitGroup
	wgWorkers.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wgWorkers.Done()
			st := &ws[worker]
			unitID := workerUnitID(worker)
			hist := rtm.taskSeconds.With(unitID)
			blGauge := rtm.blacklisted.With(unitID)
			blGauge.Set(0)
			// Spans buffer into a worker-owned shard (lock-free appends) and
			// merge into the Trace when the worker exits.
			var sh *trace.Shard
			if tracing {
				sh = rt.cfg.Trace.NewShard(shardCap)
				defer sh.Flush()
			}
			// rec buffers one causal span. t is nil for unit-level events
			// (blacklist/recover), which carry no task identity.
			rec := func(kind trace.Kind, t *Task, attempt int, s, e time.Time, from string) {
				if sh == nil {
					return
				}
				ev := trace.Event{
					Kind: kind, Unit: unitID, Worker: worker, TaskID: trace.NoTask,
					Start: s.Sub(start).Seconds(), End: e.Sub(start).Seconds(),
					Attempt: attempt, From: from,
				}
				if t != nil {
					ev.Label = taskLabel(t)
					ev.TaskID = t.id
					ev.ParentIDs = parents[t.id]
				}
				sh.Record(ev)
			}
			for {
				if !disp.acquire(done, abort) {
					return
				}
				t, victim := disp.take(worker, abort)
				if t == nil {
					if victim == takeRetry {
						continue // credit handed back; re-acquire
					}
					return // aborted mid-sweep
				}
				attempt := int(t.attempt.Load())
				if victim >= 0 {
					now := time.Now()
					rec(trace.Steal, t, attempt, now, now, workerUnitID(victim))
				}

				// Injected fault check: fires before the kernel runs, so
				// payloads stay untouched and the retry is safe. Worker-owned
				// state: no lock.
				st.startedOn++
				var inj *FaultEvent
				if ft && st.faults != nil {
					if f := st.faults.pending(); f != nil {
						if (f.AfterTasks > 0 && st.startedOn >= f.AfterTasks) ||
							(f.AtTime > 0 && time.Since(start).Seconds() >= f.AtTime) {
							st.faults.consume()
							inj = f
						}
					}
				}

				if inj != nil {
					t0 := time.Now()
					if inj.Hang {
						// A hung launch: the watchdog converts it into a
						// failure after the timeout.
						d := rt.taskTimeout(t, st.arch, policy)
						if d <= 0 {
							d = policy.backoffDuration(policy.MaxAttempts) // bounded stand-in
						}
						select {
						case <-time.After(d):
						case <-abort:
							return
						}
						mu.Lock()
						watchdogTrips++
						mu.Unlock()
					}
					detected := time.Now()
					rec(trace.Failure, t, attempt, t0, detected, "")
					// The kernel never ran: release the dispatcher's
					// outstanding-work charge without skewing observed means.
					disp.finished(worker, t, 0, false)
					mu.Lock()
					failedAttempts++
					retriedSet[t.id] = true
					attempts[t.id]++
					n := attempts[t.id]
					t.attempt.Store(int32(n))
					if n >= policy.MaxAttempts {
						fail(fmt.Errorf("taskrt: task %q (%s) failed %d attempts, last on %s: %w",
							t.Codelet.Name, t.Label, n, unitID, errInjected))
						mu.Unlock()
						resolve()
						return
					}
					backoff := policy.backoffDuration(n)
					requeue(t, backoff)
					// Blacklist this worker; other workers keep draining (its
					// deque remains stealable).
					blacklisted[unitID] = true
					alive--
					if inj.RecoverAfter > 0 {
						recovering++
					}
					if alive == 0 && recovering == 0 && pending.Load() > 0 {
						fail(fmt.Errorf("taskrt: all %d workers blacklisted with %d task(s) pending", workers, pending.Load()))
					}
					mu.Unlock()
					rec(trace.Retry, t, n, detected, detected.Add(backoff), "")
					blGauge.Set(1)
					if oa, ok := disp.(offlineAware); ok {
						oa.setOffline(worker, true)
					}
					now := time.Now()
					rec(trace.Blacklist, nil, 0, now, now, "")
					if rt.cfg.Tracker != nil {
						_ = rt.cfg.Tracker.SetOffline(unitID) // best effort: tracker may not know worker ids
					}
					if inj.RecoverAfter <= 0 {
						return // permanently dead
					}
					select {
					case <-time.After(time.Duration(inj.RecoverAfter * float64(time.Second))):
					case <-abort:
						return
					}
					mu.Lock()
					delete(blacklisted, unitID)
					alive++
					recovering--
					mu.Unlock()
					blGauge.Set(0)
					if oa, ok := disp.(offlineAware); ok {
						oa.setOffline(worker, false)
					}
					now = time.Now()
					rec(trace.Recover, nil, 0, now, now, "")
					if rt.cfg.Tracker != nil {
						_ = rt.cfg.Tracker.SetOnline(unitID)
					}
					continue
				}

				im := t.Codelet.ImplFor(st.arch)
				tc := &TaskContext{WorkerID: worker, Arch: st.arch, Task: t}
				for _, a := range t.Accesses {
					tc.Data = append(tc.Data, a.Handle.Payload)
				}
				t0 := time.Now()
				var err error
				wdog := false
				if timeout := rt.taskTimeout(t, st.arch, policy); ft && timeout > 0 {
					// Watchdog: run the kernel aside and abandon it past the
					// timeout (goroutines cannot be killed; the stuck kernel
					// is orphaned and its worker blacklisted).
					res := make(chan error, 1)
					go func() { res <- im.Func(tc) }()
					select {
					case err = <-res:
					case <-time.After(timeout):
						err = fmt.Errorf("taskrt: watchdog: task %q (%s) exceeded %v on %s",
							t.Codelet.Name, t.Label, timeout, unitID)
						wdog = true
					}
				} else {
					err = im.Func(tc)
				}
				d := time.Since(t0)
				disp.finished(worker, t, d, true)
				if err == nil {
					rec(trace.Task, t, attempt, t0, t0.Add(d), "")
					hist.Observe(d.Seconds())
					if rt.cfg.Models != nil && t.Flops > 0 && d > 0 {
						_ = rt.cfg.Models.Model(t.Codelet.Name, st.arch).Record(t.Flops, d.Seconds())
					}
					st.busy += d
					st.count++
					release(worker, t)
					resolve()
					continue
				}
				// Failure path.
				detected := t0.Add(d)
				rec(trace.Failure, t, attempt, t0, detected, "")
				st.busy += d
				if !ft {
					// Fail fast: the original no-recovery contract.
					mu.Lock()
					fail(fmt.Errorf("taskrt: task %q (%s): %w", t.Codelet.Name, t.Label, err))
					mu.Unlock()
					resolve()
					return
				}
				mu.Lock()
				failedAttempts++
				retriedSet[t.id] = true
				attempts[t.id]++
				n := attempts[t.id]
				t.attempt.Store(int32(n))
				if wdog {
					watchdogTrips++
				}
				if n >= policy.MaxAttempts {
					fail(fmt.Errorf("taskrt: task %q (%s) failed %d attempts: %w", t.Codelet.Name, t.Label, n, err))
					mu.Unlock()
					resolve()
					return
				}
				backoff := policy.backoffDuration(n)
				requeue(t, backoff)
				if wdog {
					// A hung kernel condemns its worker: the unit cannot be
					// trusted (the orphaned goroutine may still hold it).
					blacklisted[unitID] = true
					alive--
					if alive == 0 && recovering == 0 && pending.Load() > 0 {
						fail(fmt.Errorf("taskrt: all %d workers blacklisted with %d task(s) pending", workers, pending.Load()))
					}
					mu.Unlock()
					rec(trace.Retry, t, n, detected, detected.Add(backoff), "")
					blGauge.Set(1)
					if oa, ok := disp.(offlineAware); ok {
						oa.setOffline(worker, true)
					}
					now := time.Now()
					rec(trace.Blacklist, nil, 0, now, now, "")
					if rt.cfg.Tracker != nil {
						_ = rt.cfg.Tracker.SetOffline(unitID)
					}
					return
				}
				mu.Unlock()
				rec(trace.Retry, t, n, detected, detected.Add(backoff), "")
			}
		}(w)
	}

	select {
	case <-done:
	case <-abort:
	}
	elapsed := time.Since(start)
	wgWorkers.Wait() // let in-flight attempts finish before reading stats
	close(samplerStop)
	samplerWG.Wait()

	mu.Lock()
	defer mu.Unlock()
	if firstErr != nil {
		return nil, firstErr
	}
	rep := &Report{
		Mode:            Real,
		Scheduler:       rt.cfg.Scheduler,
		Tasks:           len(rt.tasks),
		MakespanSeconds: elapsed.Seconds(),
		FailedAttempts:  failedAttempts,
		RetriedTasks:    len(retriedSet),
		WatchdogTrips:   watchdogTrips,
	}
	for id := range blacklisted {
		rep.Blacklisted = append(rep.Blacklisted, id)
	}
	sort.Strings(rep.Blacklisted)
	for w := 0; w < workers; w++ {
		steals := disp.stolen(w)
		rep.Steals += steals
		rep.PerUnit = append(rep.PerUnit, UnitStats{
			ID:          workerUnitID(w),
			Arch:        ws[w].arch,
			Tasks:       ws[w].count,
			BusySeconds: ws[w].busy.Seconds(),
			Steals:      steals,
		})
	}
	return rep, nil
}

// workerArchs assigns one architecture per real-mode worker: platform
// Masters expand in declaration order, each contributing EffectiveQuantity
// workers of its architecture. An explicit Config.Workers override truncates
// the expansion or pads it with the first master's architecture, preserving
// the historical homogeneous behaviour on single-arch platforms.
func workerArchs(pl *core.Platform, workers int) []string {
	archs := make([]string, 0, workers)
	for _, m := range pl.Masters {
		for i := 0; i < m.EffectiveQuantity() && len(archs) < workers; i++ {
			archs = append(archs, m.Architecture())
		}
	}
	for len(archs) < workers {
		archs = append(archs, pl.Masters[0].Architecture())
	}
	return archs
}

// workerNodes assigns each real-mode worker the memory node of the platform
// master it expands from: masters in declaration order define the node ids,
// matching workerArchs exactly (padding beyond the expansion lands on node
// 0). The returned ids name each node by its master's PU id, for route
// lookups against the PDL.
func workerNodes(pl *core.Platform, workers int) ([]int, []string) {
	nodes := make([]int, 0, workers)
	ids := make([]string, len(pl.Masters))
	for mi, m := range pl.Masters {
		ids[mi] = m.ID
		for i := 0; i < m.EffectiveQuantity() && len(nodes) < workers; i++ {
			nodes = append(nodes, mi)
		}
	}
	for len(nodes) < workers {
		nodes = append(nodes, 0)
	}
	return nodes, ids
}

// interconnectCosts models the PDL-declared transfer cost between every pair
// of master memory nodes: latency plus inverse bandwidth summed over the
// shortest declared route, with sim-engine defaults for links that omit
// BANDWIDTH or LATENCY. Node pairs with no declared route cost zero —
// platforms that declare no interconnects get exactly the transfer-blind
// dmda behaviour they had before.
func interconnectCosts(pl *core.Platform, ids []string) [][]xferCost {
	costs := make([][]xferCost, len(ids))
	for i := range costs {
		costs[i] = make([]xferCost, len(ids))
		for j := range costs[i] {
			if i == j {
				continue
			}
			path, err := pl.Route(ids[i], ids[j])
			if err != nil {
				continue
			}
			for _, ic := range path {
				lat, ok := ic.LatencySeconds()
				if !ok {
					lat = defaultLinkLatencyNS / 1e9
				}
				bw, ok := ic.BandwidthBytesPerSec()
				if !ok || bw <= 0 {
					bw = defaultLinkBandwidth
				}
				costs[i][j].latNanos += lat * 1e9
				costs[i][j].nanosPerByte += 1e9 / bw
			}
		}
	}
	return costs
}

// taskTimeout derives the real-mode watchdog timeout for a task: perfmodel
// estimate × WatchdogFactor when history exists, else the absolute
// RetryPolicy.TaskTimeout (0 = no watchdog).
func (rt *Runtime) taskTimeout(t *Task, arch string, policy RetryPolicy) time.Duration {
	if rt.cfg.Models != nil && t.Flops > 0 {
		if est, ok := rt.cfg.Models.Model(t.Codelet.Name, arch).Estimate(t.Flops); ok {
			return time.Duration(est * policy.WatchdogFactor * float64(time.Second))
		}
	}
	if policy.TaskTimeout > 0 {
		return time.Duration(policy.TaskTimeout * float64(time.Second))
	}
	return 0
}

// HostArch returns the architecture tag real-mode kernels must target for
// the given platform.
func HostArch(pl *core.Platform) string {
	if len(pl.Masters) == 0 {
		return ""
	}
	return pl.Masters[0].Architecture()
}
