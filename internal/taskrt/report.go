package taskrt

import (
	"fmt"
	"sort"
	"strings"
)

// UnitStats aggregates per-processing-unit execution statistics.
type UnitStats struct {
	ID    string
	Arch  string
	Tasks int
	// BusySeconds is virtual time in Sim mode, wall time in Real mode.
	BusySeconds float64
	// Steals counts tasks this unit obtained from other units' queues
	// (real-mode work-stealing dispatch only).
	Steals int
}

// Report is the outcome of Runtime.Run.
type Report struct {
	Mode      Mode
	Scheduler string
	Tasks     int
	// MakespanSeconds is the end-to-end execution time: virtual in Sim
	// mode, wall-clock in Real mode.
	MakespanSeconds float64
	PerUnit         []UnitStats
	// Transfer statistics (Sim mode only).
	TransferBytes   int64
	TransferSeconds float64
	TransferCount   int

	// Fault-tolerance statistics (zero unless failures occurred).

	// FailedAttempts counts task attempts that ended in failure (injected,
	// codelet error, or watchdog) and were recovered from.
	FailedAttempts int
	// RetriedTasks counts distinct tasks that needed at least one retry.
	RetriedTasks int
	// WatchdogTrips counts hung attempts the watchdog converted to failures.
	WatchdogTrips int
	// Blacklisted lists the units taken out of scheduling by failures and
	// still offline at the end of the run, sorted.
	Blacklisted []string
	// Steals totals the per-unit steal counts (real-mode work-stealing
	// dispatch only; 0 under the "eager" single-queue dispatch and in Sim).
	Steals int
}

// BlacklistedUnits returns how many units ended the run blacklisted.
func (r *Report) BlacklistedUnits() int { return len(r.Blacklisted) }

// BusyUnits returns how many units executed at least one task.
func (r *Report) BusyUnits() int {
	n := 0
	for _, u := range r.PerUnit {
		if u.Tasks > 0 {
			n++
		}
	}
	return n
}

// UnitByID returns the stats row for a unit id.
func (r *Report) UnitByID(id string) (UnitStats, bool) {
	for _, u := range r.PerUnit {
		if u.ID == id {
			return u, true
		}
	}
	return UnitStats{}, false
}

// TasksOnArch sums tasks executed on units of the given architecture.
func (r *Report) TasksOnArch(arch string) int {
	n := 0
	for _, u := range r.PerUnit {
		if u.Arch == arch {
			n += u.Tasks
		}
	}
	return n
}

// String renders a human-readable execution summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mode=%s sched=%s tasks=%d makespan=%.6fs", r.Mode, r.Scheduler, r.Tasks, r.MakespanSeconds)
	if r.Steals > 0 {
		fmt.Fprintf(&b, " steals=%d", r.Steals)
	}
	if r.TransferCount > 0 {
		fmt.Fprintf(&b, " transfers=%d (%.1f MB, %.6fs)", r.TransferCount, float64(r.TransferBytes)/(1<<20), r.TransferSeconds)
	}
	if r.FailedAttempts > 0 || len(r.Blacklisted) > 0 {
		fmt.Fprintf(&b, " failures=%d retried=%d watchdog=%d blacklisted=%v",
			r.FailedAttempts, r.RetriedTasks, r.WatchdogTrips, r.Blacklisted)
	}
	b.WriteString("\n")
	units := append([]UnitStats(nil), r.PerUnit...)
	sort.Slice(units, func(i, j int) bool { return units[i].ID < units[j].ID })
	for _, u := range units {
		if u.Tasks == 0 {
			continue
		}
		util := 0.0
		if r.MakespanSeconds > 0 {
			util = u.BusySeconds / r.MakespanSeconds
		}
		fmt.Fprintf(&b, "  %-10s %-4s tasks=%-5d busy=%.6fs util=%.0f%%\n", u.ID, u.Arch, u.Tasks, u.BusySeconds, util*100)
	}
	return b.String()
}

// Speedup returns base.MakespanSeconds / r.MakespanSeconds: how much faster
// r is than base.
func (r *Report) Speedup(base *Report) float64 {
	if r.MakespanSeconds <= 0 {
		return 0
	}
	return base.MakespanSeconds / r.MakespanSeconds
}
