package taskrt

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/dynamic"
	"repro/internal/perfmodel"
	"repro/internal/sim"
	"repro/internal/simhw"
	"repro/internal/trace"
)

// simUnit pairs a simulated hardware unit with its occupancy resource and
// its fault-tolerance state.
type simUnit struct {
	hw    *simhw.Unit
	idx   int // lane index, stamped into trace spans as Worker
	res   sim.Resource
	tasks int

	started   int         // attempts launched on this unit (fault triggers)
	downUntil sim.Time    // transient blacklisting: unavailable before this
	dead      bool        // permanent blacklisting: skipped by schedulers
	faults    *faultQueue // injected events for this unit, in plan order
}

// availAt returns when the unit can next start work, accounting for both
// occupancy and transient blacklisting.
func (su *simUnit) availAt() sim.Time {
	a := su.res.Available()
	if su.downUntil > a {
		a = su.downUntil
	}
	return a
}

// simFailure describes one failed attempt to the scheduling loop.
type simFailure struct {
	at       sim.Time // detection time
	unit     string
	unitIdx  int
	watchdog bool
}

// simState is the mutable state of one simulated execution.
type simState struct {
	machine *simhw.Machine
	units   []*simUnit
	dma     []sim.Resource           // one DMA engine per memory node
	valid   map[*Handle]map[int]bool // coherence: nodes holding a valid copy
	rng     *rand.Rand
	tracer  *trace.Trace

	// Fault tolerance.
	ft      bool
	policy  RetryPolicy
	tracker *dynamic.Tracker
	models  *perfmodel.Store

	transferBytes int64
	transferSecs  float64
	transferCount int

	failedAttempts int
	watchdogTrips  int
	failedUnits    []string // permanently blacklisted by failures, in order
}

// runSim executes the task graph in virtual time via greedy list scheduling
// with the configured policy. The algorithm is deterministic for a given
// (platform, task graph, scheduler, seed, fault plan).
func (rt *Runtime) runSim() (*Report, error) {
	machine, err := simhw.FromPlatform(rt.cfg.Platform)
	if err != nil {
		return nil, err
	}
	st := &simState{
		machine: machine,
		dma:     make([]sim.Resource, machine.NumNodes()),
		valid:   map[*Handle]map[int]bool{},
		rng:     rand.New(rand.NewSource(rt.cfg.Seed)),
		tracer:  rt.cfg.Trace,
		ft:      rt.ftEnabled(),
		policy:  rt.cfg.Retry.withDefaults(),
		tracker: rt.cfg.Tracker,
		models:  rt.cfg.Models,
	}
	// Units the tracker already reports offline start blacklisted: the
	// in-flight path honours the same descriptor state the re-plan path
	// (dynamic.Tracker.Snapshot) would have pruned.
	preOffline := map[string]bool{}
	if st.tracker != nil {
		for _, id := range st.tracker.OfflineUnits() {
			preOffline[id] = true
		}
	}
	for _, u := range machine.Units {
		su := &simUnit{hw: u, idx: len(st.units)}
		if evs := rt.cfg.Faults.forUnit(u.ID); len(evs) > 0 {
			su.faults = &faultQueue{events: evs}
		}
		if preOffline[u.ID] || preOffline[baseUnitID(u.ID)] {
			su.dead = true
		}
		st.units = append(st.units, su)
	}
	for _, h := range rt.handles {
		st.valid[h] = map[int]bool{h.home: true}
	}

	// Dependency bookkeeping.
	remaining := make(map[*Task]int, len(rt.tasks))
	readyAt := make(map[*Task]sim.Time, len(rt.tasks))
	attempts := make(map[*Task]int)
	retried := make(map[*Task]bool)
	var ready []*Task
	for _, t := range rt.tasks {
		remaining[t] = len(t.deps)
		if remaining[t] == 0 {
			ready = append(ready, t)
		}
	}

	var makespan sim.Time
	completed := 0
	for completed < len(rt.tasks) {
		if len(ready) == 0 {
			return nil, fmt.Errorf("taskrt: task graph deadlock (cycle?) with %d tasks pending", len(rt.tasks)-completed)
		}
		ti := rt.pickTaskIndex(ready, st)
		t := ready[ti]
		ready = append(ready[:ti], ready[ti+1:]...)

		u, err := rt.pickUnit(t, st, readyAt[t])
		if err != nil {
			return nil, err
		}
		end, fail, err := st.execute(t, u, readyAt[t], attempts[t])
		if err != nil {
			return nil, err
		}
		if fail != nil {
			// Failure recovery: re-queue the task with capped exponential
			// backoff. The failed unit is blacklisted (permanently or until
			// recovery), so the retry lands on a different unit — and when
			// the whole PU class is gone, on a different implementation
			// variant (GPU codelet → CPU variant) via compatibleUnits.
			attempts[t]++
			retried[t] = true
			st.failedAttempts++
			if attempts[t] >= st.policy.MaxAttempts {
				return nil, fmt.Errorf("taskrt: task %q (%s) failed %d attempts, last on %s; giving up",
					t.Codelet.Name, t.Label, attempts[t], fail.unit)
			}
			retryAt := fail.at + sim.Time(st.policy.backoff(attempts[t]))
			if st.tracer != nil {
				st.tracer.Record(trace.Event{
					Kind: trace.Retry, Unit: fail.unit, Label: taskLabel(t),
					Start: float64(fail.at), End: float64(retryAt),
					TaskID: t.id, Attempt: attempts[t], Worker: fail.unitIdx,
				})
			}
			readyAt[t] = retryAt
			ready = append(ready, t)
			continue
		}
		if end > makespan {
			makespan = end
		}
		completed++
		for _, d := range t.dependents {
			if end > readyAt[d] {
				readyAt[d] = end
			}
			remaining[d]--
			if remaining[d] == 0 {
				ready = append(ready, d)
			}
		}
	}

	rep := &Report{
		Mode:            Sim,
		Scheduler:       rt.cfg.Scheduler,
		Tasks:           len(rt.tasks),
		MakespanSeconds: float64(makespan),
		TransferBytes:   st.transferBytes,
		TransferSeconds: st.transferSecs,
		TransferCount:   st.transferCount,
		FailedAttempts:  st.failedAttempts,
		RetriedTasks:    len(retried),
		WatchdogTrips:   st.watchdogTrips,
	}
	rep.Blacklisted = append(rep.Blacklisted, st.failedUnits...)
	sort.Strings(rep.Blacklisted)
	for _, su := range st.units {
		rep.PerUnit = append(rep.PerUnit, UnitStats{
			ID: su.hw.ID, Arch: su.hw.Arch, Tasks: su.tasks, BusySeconds: float64(su.res.Busy()),
		})
	}
	return rep, nil
}

// taskLabel names a task in traces.
func taskLabel(t *Task) string {
	if t.Label != "" {
		return t.Label
	}
	return t.Codelet.Name
}

// taskParents resolves a task's dependency ids for trace spans (nil when the
// task is a DAG root).
func taskParents(t *Task) []int {
	if len(t.deps) == 0 {
		return nil
	}
	ps := make([]int, len(t.deps))
	for i, d := range t.deps {
		ps[i] = d.id
	}
	return ps
}

// baseUnitID maps a quantity-expanded instance id back to the descriptor id
// it was expanded from ("host.3" → "host"); ids without an instance suffix
// map to themselves.
func baseUnitID(id string) string {
	for i := len(id) - 1; i > 0; i-- {
		c := id[i]
		if c >= '0' && c <= '9' {
			continue
		}
		if c == '.' && i < len(id)-1 {
			return id[:i]
		}
		break
	}
	return id
}

// kernelSeconds returns the virtual execution time of t's implementation on
// unit u, honouring per-codelet speed factors.
func kernelSeconds(m *simhw.Machine, t *Task, u *simhw.Unit) float64 {
	im := t.Codelet.ImplFor(u.Arch)
	factor := im.SpeedFactor
	if factor <= 0 {
		factor = 1
	}
	return m.KernelTime(u, t.Flops/factor)
}

// watchdogTimeout derives the hang-detection timeout for task t on unit su:
// per-codelet perfmodel estimate × factor when history exists, else the
// simulator's own cost model × factor.
func (st *simState) watchdogTimeout(t *Task, su *simUnit) float64 {
	est := kernelSeconds(st.machine, t, su.hw)
	if st.models != nil && t.Flops > 0 {
		if e, ok := st.models.Model(t.Codelet.Name, su.hw.Arch).Estimate(t.Flops); ok {
			est = e
		}
	}
	return est * st.policy.WatchdogFactor
}

// execute commits task t onto unit u: stages the required transfers,
// occupies the unit and updates coherence. It returns the completion time,
// or a non-nil simFailure when an injected fault killed the attempt.
// attempt numbers this try of t (0 = first), stamped into trace spans.
func (st *simState) execute(t *Task, su *simUnit, ready sim.Time, attempt int) (sim.Time, *simFailure, error) {
	node := su.hw.MemNode
	if su.downUntil > ready {
		ready = su.downUntil
	}
	dataReady := ready
	for _, a := range t.Accesses {
		if !a.Mode.Reads() {
			continue // pure writes need no inbound copy
		}
		v := st.valid[a.Handle]
		if v[node] {
			continue
		}
		src, dur, err := st.cheapestSource(a.Handle, node)
		if err != nil {
			return 0, nil, err
		}
		s, e := st.dma[node].Acquire(ready, sim.Time(dur))
		st.transferBytes += a.Handle.Bytes
		st.transferSecs += dur
		st.transferCount++
		if st.tracer != nil {
			st.tracer.Record(trace.Event{
				Kind: trace.Transfer, Unit: fmt.Sprintf("node%d", node),
				Label: a.Handle.Name, Start: float64(s), End: float64(e),
				Bytes:  a.Handle.Bytes,
				TaskID: t.id, Worker: su.idx, From: fmt.Sprintf("node%d", src),
			})
		}
		if e > dataReady {
			dataReady = e
		}
	}
	dur := sim.Time(kernelSeconds(st.machine, t, su.hw))
	start := dataReady
	if a := su.res.Available(); a > start {
		start = a
	}
	su.started++
	if st.ft {
		if fail, err := st.checkFault(t, su, start, dur, attempt); fail != nil || err != nil {
			return 0, fail, err
		}
	}
	// dataReady already accounts for downUntil, so Acquire's start matches
	// the start the fault check used.
	_, end := su.res.Acquire(dataReady, dur)
	su.tasks++
	rtm.taskSeconds.With(su.hw.ID).Observe(float64(dur))
	if st.tracer != nil {
		st.tracer.Record(trace.Event{
			Kind: trace.Task, Unit: su.hw.ID, Label: taskLabel(t),
			Start: float64(start), End: float64(end),
			TaskID: t.id, ParentIDs: taskParents(t), Attempt: attempt, Worker: su.idx,
		})
	}
	// Commit coherence after execution.
	for _, a := range t.Accesses {
		if a.Mode.Writes() {
			st.valid[a.Handle] = map[int]bool{node: true}
			if st.ft && node != 0 {
				// Checkpoint device writes to host RAM so recovery never
				// depends on state held by a unit that may die: the
				// write-back cost is charged to the host DMA engine and
				// counted as a transfer.
				st.mirrorToHost(a.Handle, node, end, t.id)
			}
		} else {
			st.valid[a.Handle][node] = true
		}
	}
	return end, nil, nil
}

// checkFault fires the unit's next injected fault if this attempt triggers
// it: the unit is occupied for the wasted window, blacklisted (with optional
// recovery), its device memory is invalidated, and the failure is traced and
// mirrored into the dynamic tracker.
func (st *simState) checkFault(t *Task, su *simUnit, start, dur sim.Time, attempt int) (*simFailure, error) {
	f := su.faults.pending()
	if f == nil {
		return nil, nil
	}
	var detect sim.Time
	switch {
	case f.AfterTasks > 0 && su.started >= f.AfterTasks:
		// The kernel crashes halfway through its run.
		detect = start + dur/2
	case f.AtTime > 0 && float64(start+dur) > f.AtTime:
		// The unit dies at AtTime: mid-kernel when the attempt spans it,
		// at launch when the unit was already dead.
		detect = sim.Time(f.AtTime)
		if detect < start {
			detect = start
		}
	default:
		return nil, nil
	}
	if f.Hang {
		// A hung kernel is only detected when the watchdog timeout (per-
		// codelet estimate × factor) expires, so hangs waste more of the
		// unit than crashes — but can never block the run forever.
		detect = start + sim.Time(st.watchdogTimeout(t, su))
		st.watchdogTrips++
	}
	su.faults.consume()
	if wasted := detect - start; wasted > 0 {
		su.res.Acquire(start, wasted)
	}
	if st.tracer != nil {
		st.tracer.Record(trace.Event{
			Kind: trace.Failure, Unit: su.hw.ID, Label: taskLabel(t),
			Start: float64(start), End: float64(detect),
			TaskID: t.id, ParentIDs: taskParents(t), Attempt: attempt, Worker: su.idx,
		})
	}
	// Blacklist the unit. Tracker notifications are emitted in engine
	// processing order; the trace events carry the virtual times.
	if f.RecoverAfter > 0 {
		su.downUntil = detect + sim.Time(f.RecoverAfter)
		if st.tracer != nil {
			st.tracer.Record(trace.Event{
				Kind: trace.Blacklist, Unit: su.hw.ID,
				Start: float64(detect), End: float64(detect),
				TaskID: trace.NoTask, Worker: su.idx,
			})
			st.tracer.Record(trace.Event{
				Kind: trace.Recover, Unit: su.hw.ID,
				Start: float64(su.downUntil), End: float64(su.downUntil),
				TaskID: trace.NoTask, Worker: su.idx,
			})
		}
		if st.tracker != nil {
			// Best effort: the tracker only knows descriptor-level ids.
			if st.tracker.SetOffline(su.hw.ID) == nil {
				_ = st.tracker.SetOnline(su.hw.ID)
			}
		}
	} else {
		su.dead = true
		st.failedUnits = append(st.failedUnits, su.hw.ID)
		if st.tracer != nil {
			st.tracer.Record(trace.Event{
				Kind: trace.Blacklist, Unit: su.hw.ID,
				Start: float64(detect), End: float64(detect),
				TaskID: trace.NoTask, Worker: su.idx,
			})
		}
		if st.tracker != nil {
			_ = st.tracker.SetOffline(su.hw.ID)
		}
	}
	// Never reuse state on the dead unit: every copy in its device memory is
	// dropped, and later readers re-issue transfers from a surviving MSI
	// copy (host RAM holds one for every handle thanks to write-back).
	// Node 0 is shared host RAM — a dying CPU core does not lose it.
	if node := su.hw.MemNode; node != 0 {
		if err := st.invalidateNode(node); err != nil {
			return nil, err
		}
	}
	return &simFailure{at: detect, unit: su.hw.ID, unitIdx: su.idx, watchdog: f.Hang}, nil
}

// invalidateNode drops every valid copy held by a failed device's memory.
func (st *simState) invalidateNode(node int) error {
	for h, set := range st.valid {
		if !set[node] {
			continue
		}
		delete(set, node)
		if len(set) == 0 {
			return fmt.Errorf("taskrt: handle %q lost its last valid copy with memory node %d", h.Name, node)
		}
	}
	return nil
}

// mirrorToHost write-backs a freshly written device copy to host RAM.
// taskID attributes the transfer to the task whose write is checkpointed.
func (st *simState) mirrorToHost(h *Handle, node int, ready sim.Time, taskID int) {
	dur, err := st.machine.TransferTime(node, 0, h.Bytes)
	if err != nil {
		return // no route: node keeps the only copy
	}
	s, e := st.dma[0].Acquire(ready, sim.Time(dur))
	st.transferBytes += h.Bytes
	st.transferSecs += dur
	st.transferCount++
	if st.tracer != nil {
		st.tracer.Record(trace.Event{
			Kind: trace.Transfer, Unit: "node0",
			Label: h.Name, Start: float64(s), End: float64(e),
			Bytes:  h.Bytes,
			TaskID: taskID, Worker: -1, From: fmt.Sprintf("node%d", node),
		})
	}
	st.valid[h][0] = true
}

// cheapestSource picks the valid copy of h that is cheapest to move to dst.
func (st *simState) cheapestSource(h *Handle, dst int) (src int, seconds float64, err error) {
	best := -1
	bestT := math.Inf(1)
	for node, ok := range st.valid[h] {
		if !ok {
			continue
		}
		d, err := st.machine.TransferTime(node, dst, h.Bytes)
		if err != nil {
			continue
		}
		if d < bestT {
			bestT, best = d, node
		}
	}
	if best < 0 {
		return 0, 0, fmt.Errorf("taskrt: no valid copy of handle %q reachable from node %d", h.Name, dst)
	}
	return best, bestT, nil
}

// estimateEFT predicts the earliest finish time of t on unit u given
// current resource horizons — the dmda cost function.
func (st *simState) estimateEFT(t *Task, su *simUnit, ready sim.Time) sim.Time {
	node := su.hw.MemNode
	if su.downUntil > ready {
		ready = su.downUntil
	}
	dataReady := ready
	for _, a := range t.Accesses {
		if !a.Mode.Reads() {
			continue
		}
		if st.valid[a.Handle][node] {
			continue
		}
		_, dur, err := st.cheapestSource(a.Handle, node)
		if err != nil {
			return sim.Time(math.Inf(1))
		}
		s := ready
		if st.dma[node].Available() > s {
			s = st.dma[node].Available()
		}
		if e := s + sim.Time(dur); e > dataReady {
			dataReady = e
		}
	}
	start := dataReady
	if a := su.availAt(); a > start {
		start = a
	}
	return start + sim.Time(kernelSeconds(st.machine, t, su.hw))
}

// compatibleUnits returns the units that have an implementation for t,
// satisfy the task's Where placement constraint and are not blacklisted.
func (st *simState) compatibleUnits(t *Task) []*simUnit {
	var out []*simUnit
	for _, su := range st.units {
		if su.dead {
			continue // blacklisted by a failure (or offline in the tracker)
		}
		if t.Codelet.ImplFor(su.hw.Arch) == nil {
			continue
		}
		if len(t.Where) > 0 && !unitAllowed(su.hw.ID, t.Where) {
			continue
		}
		out = append(out, su)
	}
	return out
}

// unitAllowed reports whether a (possibly quantity-expanded) unit id matches
// one of the allowed PU ids.
func unitAllowed(id string, where []string) bool {
	for _, w := range where {
		if id == w || (len(id) > len(w) && id[:len(w)] == w && id[len(w)] == '.') {
			return true
		}
	}
	return false
}

// pickTaskIndex chooses which ready task to schedule next.
func (rt *Runtime) pickTaskIndex(ready []*Task, st *simState) int {
	switch rt.cfg.Scheduler {
	case "heft":
		// Largest work first (a static upward-rank approximation).
		best, bestFlops := 0, -1.0
		for i, t := range ready {
			if t.Flops > bestFlops {
				best, bestFlops = i, t.Flops
			}
		}
		return best
	case "random":
		return st.rng.Intn(len(ready))
	default: // eager, dmda: priority then FIFO
		best := 0
		for i, t := range ready {
			if t.Priority > ready[best].Priority ||
				(t.Priority == ready[best].Priority && t.id < ready[best].id) {
				best = i
			}
		}
		return best
	}
}

// pickUnit chooses the unit for task t.
func (rt *Runtime) pickUnit(t *Task, st *simState, ready sim.Time) (*simUnit, error) {
	cands := st.compatibleUnits(t)
	if len(cands) == 0 {
		return nil, fmt.Errorf("taskrt: no unit can run codelet %q (impls %v; %d unit(s) blacklisted)",
			t.Codelet.Name, t.Codelet.Archs(), len(st.failedUnits))
	}
	switch rt.cfg.Scheduler {
	case "random":
		return cands[st.rng.Intn(len(cands))], nil
	case "ws":
		// Work stealing: tasks are dealt round-robin to per-unit queues at
		// submission; an idle unit steals when the owner is backed up. In
		// list-scheduling terms: run on the owner unless another compatible
		// unit would start strictly earlier.
		owner := cands[t.id%len(cands)]
		best := owner
		for _, su := range cands {
			if su.availAt() < best.availAt() {
				best = su
			}
		}
		if owner.availAt() <= best.availAt() || owner.availAt() <= ready {
			return owner, nil
		}
		return best, nil
	case "dmda", "heft":
		best := cands[0]
		bestEFT := st.estimateEFT(t, best, ready)
		for _, su := range cands[1:] {
			if eft := st.estimateEFT(t, su, ready); eft < bestEFT {
				best, bestEFT = su, eft
			}
		}
		return best, nil
	default: // eager: earliest-available compatible unit (central greedy queue)
		best := cands[0]
		for _, su := range cands[1:] {
			if su.availAt() < best.availAt() {
				best = su
			}
		}
		return best, nil
	}
}
