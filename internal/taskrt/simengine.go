package taskrt

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/sim"
	"repro/internal/simhw"
	"repro/internal/trace"
)

// simUnit pairs a simulated hardware unit with its occupancy resource.
type simUnit struct {
	hw    *simhw.Unit
	res   sim.Resource
	tasks int
}

// simState is the mutable state of one simulated execution.
type simState struct {
	machine *simhw.Machine
	units   []*simUnit
	dma     []sim.Resource           // one DMA engine per memory node
	valid   map[*Handle]map[int]bool // coherence: nodes holding a valid copy
	rng     *rand.Rand
	tracer  *trace.Trace

	transferBytes int64
	transferSecs  float64
	transferCount int
}

// runSim executes the task graph in virtual time via greedy list scheduling
// with the configured policy. The algorithm is deterministic for a given
// (platform, task graph, scheduler, seed).
func (rt *Runtime) runSim() (*Report, error) {
	machine, err := simhw.FromPlatform(rt.cfg.Platform)
	if err != nil {
		return nil, err
	}
	st := &simState{
		machine: machine,
		dma:     make([]sim.Resource, machine.NumNodes()),
		valid:   map[*Handle]map[int]bool{},
		rng:     rand.New(rand.NewSource(rt.cfg.Seed)),
		tracer:  rt.cfg.Trace,
	}
	for _, u := range machine.Units {
		st.units = append(st.units, &simUnit{hw: u})
	}
	for _, h := range rt.handles {
		st.valid[h] = map[int]bool{h.home: true}
	}

	// Dependency bookkeeping.
	remaining := make(map[*Task]int, len(rt.tasks))
	readyAt := make(map[*Task]sim.Time, len(rt.tasks))
	var ready []*Task
	for _, t := range rt.tasks {
		remaining[t] = len(t.deps)
		if remaining[t] == 0 {
			ready = append(ready, t)
		}
	}

	var makespan sim.Time
	completed := 0
	for completed < len(rt.tasks) {
		if len(ready) == 0 {
			return nil, fmt.Errorf("taskrt: task graph deadlock (cycle?) with %d tasks pending", len(rt.tasks)-completed)
		}
		ti := rt.pickTaskIndex(ready, st)
		t := ready[ti]
		ready = append(ready[:ti], ready[ti+1:]...)

		u, err := rt.pickUnit(t, st, readyAt[t])
		if err != nil {
			return nil, err
		}
		end, err := st.execute(t, u, readyAt[t])
		if err != nil {
			return nil, err
		}
		if end > makespan {
			makespan = end
		}
		completed++
		for _, d := range t.dependents {
			if end > readyAt[d] {
				readyAt[d] = end
			}
			remaining[d]--
			if remaining[d] == 0 {
				ready = append(ready, d)
			}
		}
	}

	rep := &Report{
		Mode:            Sim,
		Scheduler:       rt.cfg.Scheduler,
		Tasks:           len(rt.tasks),
		MakespanSeconds: float64(makespan),
		TransferBytes:   st.transferBytes,
		TransferSeconds: st.transferSecs,
		TransferCount:   st.transferCount,
	}
	for _, su := range st.units {
		rep.PerUnit = append(rep.PerUnit, UnitStats{
			ID: su.hw.ID, Arch: su.hw.Arch, Tasks: su.tasks, BusySeconds: float64(su.res.Busy()),
		})
	}
	return rep, nil
}

// kernelSeconds returns the virtual execution time of t's implementation on
// unit u, honouring per-codelet speed factors.
func kernelSeconds(m *simhw.Machine, t *Task, u *simhw.Unit) float64 {
	im := t.Codelet.ImplFor(u.Arch)
	factor := im.SpeedFactor
	if factor <= 0 {
		factor = 1
	}
	return m.KernelTime(u, t.Flops/factor)
}

// execute commits task t onto unit u: stages the required transfers,
// occupies the unit and updates coherence. It returns the completion time.
func (st *simState) execute(t *Task, su *simUnit, ready sim.Time) (sim.Time, error) {
	node := su.hw.MemNode
	dataReady := ready
	for _, a := range t.Accesses {
		if !a.Mode.Reads() {
			continue // pure writes need no inbound copy
		}
		v := st.valid[a.Handle]
		if v[node] {
			continue
		}
		_, dur, err := st.cheapestSource(a.Handle, node)
		if err != nil {
			return 0, err
		}
		s, e := st.dma[node].Acquire(ready, sim.Time(dur))
		st.transferBytes += a.Handle.Bytes
		st.transferSecs += dur
		st.transferCount++
		if st.tracer != nil {
			st.tracer.Record(trace.Event{
				Kind: trace.Transfer, Unit: fmt.Sprintf("node%d", node),
				Label: a.Handle.Name, Start: float64(s), End: float64(e),
				Bytes: a.Handle.Bytes,
			})
		}
		if e > dataReady {
			dataReady = e
		}
	}
	dur := kernelSeconds(st.machine, t, su.hw)
	start, end := su.res.Acquire(dataReady, sim.Time(dur))
	su.tasks++
	if st.tracer != nil {
		label := t.Label
		if label == "" {
			label = t.Codelet.Name
		}
		st.tracer.Record(trace.Event{
			Kind: trace.Task, Unit: su.hw.ID, Label: label,
			Start: float64(start), End: float64(end),
		})
	}
	// Commit coherence after execution.
	for _, a := range t.Accesses {
		if a.Mode.Writes() {
			st.valid[a.Handle] = map[int]bool{node: true}
		} else {
			st.valid[a.Handle][node] = true
		}
	}
	return end, nil
}

// cheapestSource picks the valid copy of h that is cheapest to move to dst.
func (st *simState) cheapestSource(h *Handle, dst int) (src int, seconds float64, err error) {
	best := -1
	bestT := math.Inf(1)
	for node, ok := range st.valid[h] {
		if !ok {
			continue
		}
		d, err := st.machine.TransferTime(node, dst, h.Bytes)
		if err != nil {
			continue
		}
		if d < bestT {
			bestT, best = d, node
		}
	}
	if best < 0 {
		return 0, 0, fmt.Errorf("taskrt: no valid copy of handle %q reachable from node %d", h.Name, dst)
	}
	return best, bestT, nil
}

// estimateEFT predicts the earliest finish time of t on unit u given
// current resource horizons — the dmda cost function.
func (st *simState) estimateEFT(t *Task, su *simUnit, ready sim.Time) sim.Time {
	node := su.hw.MemNode
	dataReady := ready
	for _, a := range t.Accesses {
		if !a.Mode.Reads() {
			continue
		}
		if st.valid[a.Handle][node] {
			continue
		}
		_, dur, err := st.cheapestSource(a.Handle, node)
		if err != nil {
			return sim.Time(math.Inf(1))
		}
		s := ready
		if st.dma[node].Available() > s {
			s = st.dma[node].Available()
		}
		if e := s + sim.Time(dur); e > dataReady {
			dataReady = e
		}
	}
	start := dataReady
	if su.res.Available() > start {
		start = su.res.Available()
	}
	return start + sim.Time(kernelSeconds(st.machine, t, su.hw))
}

// compatibleUnits returns the units that have an implementation for t and
// satisfy the task's Where placement constraint.
func (st *simState) compatibleUnits(t *Task) []*simUnit {
	var out []*simUnit
	for _, su := range st.units {
		if t.Codelet.ImplFor(su.hw.Arch) == nil {
			continue
		}
		if len(t.Where) > 0 && !unitAllowed(su.hw.ID, t.Where) {
			continue
		}
		out = append(out, su)
	}
	return out
}

// unitAllowed reports whether a (possibly quantity-expanded) unit id matches
// one of the allowed PU ids.
func unitAllowed(id string, where []string) bool {
	for _, w := range where {
		if id == w || (len(id) > len(w) && id[:len(w)] == w && id[len(w)] == '.') {
			return true
		}
	}
	return false
}

// pickTaskIndex chooses which ready task to schedule next.
func (rt *Runtime) pickTaskIndex(ready []*Task, st *simState) int {
	switch rt.cfg.Scheduler {
	case "heft":
		// Largest work first (a static upward-rank approximation).
		best, bestFlops := 0, -1.0
		for i, t := range ready {
			if t.Flops > bestFlops {
				best, bestFlops = i, t.Flops
			}
		}
		return best
	case "random":
		return st.rng.Intn(len(ready))
	default: // eager, dmda: priority then FIFO
		best := 0
		for i, t := range ready {
			if t.Priority > ready[best].Priority ||
				(t.Priority == ready[best].Priority && t.id < ready[best].id) {
				best = i
			}
		}
		return best
	}
}

// pickUnit chooses the unit for task t.
func (rt *Runtime) pickUnit(t *Task, st *simState, ready sim.Time) (*simUnit, error) {
	cands := st.compatibleUnits(t)
	if len(cands) == 0 {
		return nil, fmt.Errorf("taskrt: no unit can run codelet %q (impls %v)", t.Codelet.Name, t.Codelet.Archs())
	}
	switch rt.cfg.Scheduler {
	case "random":
		return cands[st.rng.Intn(len(cands))], nil
	case "ws":
		// Work stealing: tasks are dealt round-robin to per-unit queues at
		// submission; an idle unit steals when the owner is backed up. In
		// list-scheduling terms: run on the owner unless another compatible
		// unit would start strictly earlier.
		owner := cands[t.id%len(cands)]
		best := owner
		for _, su := range cands {
			if su.res.Available() < best.res.Available() {
				best = su
			}
		}
		if owner.res.Available() <= best.res.Available() || owner.res.Available() <= ready {
			return owner, nil
		}
		return best, nil
	case "dmda", "heft":
		best := cands[0]
		bestEFT := st.estimateEFT(t, best, ready)
		for _, su := range cands[1:] {
			if eft := st.estimateEFT(t, su, ready); eft < bestEFT {
				best, bestEFT = su, eft
			}
		}
		return best, nil
	default: // eager: earliest-available compatible unit (central greedy queue)
		best := cands[0]
		for _, su := range cands[1:] {
			if su.res.Available() < best.res.Available() {
				best = su
			}
		}
		return best, nil
	}
}
