package taskrt

import (
	"math"
	"strings"
	"testing"

	"repro/internal/discover"
)

// dgemmCodelet is a two-variant codelet: an x86 kernel and a (sim-only) gpu
// kernel, like the paper's DGEMM with GotoBLAS and CuBLAS variants.
func dgemmCodelet(t testing.TB) *Codelet {
	t.Helper()
	c, err := NewCodelet("dgemm",
		Impl{Arch: "x86", Func: func(*TaskContext) error { return nil }},
		Impl{Arch: "gpu"},
	)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// submitTiles submits n independent GEMM-tile tasks of the given flops, each
// reading two shared inputs and writing its own output tile.
func submitTiles(t testing.TB, rt *Runtime, n int, flops float64, tileBytes int64) {
	t.Helper()
	a := rt.NewHandle("A", tileBytes, nil)
	b := rt.NewHandle("B", tileBytes, nil)
	cl := dgemmCodelet(t)
	for i := 0; i < n; i++ {
		c := rt.NewHandle("C", tileBytes, nil)
		if err := rt.Submit(&Task{
			Codelet:  cl,
			Accesses: []Access{R(a), R(b), RW(c)},
			Flops:    flops,
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func simRun(t testing.TB, platform, sched string, tiles int, flops float64, bytes int64) *Report {
	t.Helper()
	rt, err := New(Config{
		Platform:  discover.MustPlatform(platform),
		Mode:      Sim,
		Scheduler: sched,
	})
	if err != nil {
		t.Fatal(err)
	}
	submitTiles(t, rt, tiles, flops, bytes)
	rep, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestSimSingleCoreMakespanMatchesCalibration(t *testing.T) {
	// 10 tiles of 2 GFLOP on one 9.79 GF/s core: ~2.044 s total.
	rep := simRun(t, "xeon-1core", "eager", 10, 2e9, 1<<20)
	want := 10 * 2e9 / (10.64 * 0.92 * 1e9)
	if math.Abs(rep.MakespanSeconds-want)/want > 0.01 {
		t.Fatalf("makespan = %g; want ~%g", rep.MakespanSeconds, want)
	}
	if rep.Mode != Sim || rep.Tasks != 10 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestSimEightCoresNearLinear(t *testing.T) {
	one := simRun(t, "xeon-1core", "eager", 64, 2e9, 1<<20)
	eight := simRun(t, "xeon-cpu", "eager", 64, 2e9, 1<<20)
	sp := eight.Speedup(one)
	if sp < 7.5 || sp > 8.1 {
		t.Fatalf("8-core speedup = %g; want ~8", sp)
	}
	if eight.BusyUnits() != 8 {
		t.Fatalf("busy units = %d", eight.BusyUnits())
	}
}

func TestSimGPUsBeatCPUs(t *testing.T) {
	cpu := simRun(t, "xeon-cpu", "dmda", 64, 2e9, 8<<20)
	gpu := simRun(t, "xeon-2gpu", "dmda", 64, 2e9, 8<<20)
	if gpu.MakespanSeconds >= cpu.MakespanSeconds {
		t.Fatalf("gpu platform (%g s) should beat cpu platform (%g s)",
			gpu.MakespanSeconds, cpu.MakespanSeconds)
	}
	if gpu.TasksOnArch("gpu") == 0 {
		t.Fatal("dmda placed no tasks on GPUs")
	}
	if gpu.TransferCount == 0 || gpu.TransferBytes == 0 {
		t.Fatal("GPU execution must involve transfers")
	}
	if !strings.Contains(gpu.String(), "transfers=") {
		t.Fatalf("String() = %q", gpu.String())
	}
}

func TestSimDeterminism(t *testing.T) {
	for _, sched := range []string{"eager", "dmda", "heft", "random"} {
		a := simRun(t, "xeon-2gpu", sched, 32, 2e9, 4<<20)
		b := simRun(t, "xeon-2gpu", sched, 32, 2e9, 4<<20)
		if a.MakespanSeconds != b.MakespanSeconds {
			t.Errorf("%s: nondeterministic makespan %g vs %g", sched, a.MakespanSeconds, b.MakespanSeconds)
		}
	}
}

func TestSimSchedulersAllComplete(t *testing.T) {
	for _, sched := range []string{"eager", "dmda", "heft", "random"} {
		rep := simRun(t, "xeon-2gpu", sched, 40, 2e9, 4<<20)
		if rep.Tasks != 40 {
			t.Errorf("%s: tasks = %d", sched, rep.Tasks)
		}
		total := 0
		for _, u := range rep.PerUnit {
			total += u.Tasks
		}
		if total != 40 {
			t.Errorf("%s: per-unit total = %d", sched, total)
		}
		if rep.Scheduler != sched {
			t.Errorf("scheduler label = %q", rep.Scheduler)
		}
	}
}

func TestSimDmdaBeatsRandomOnHeterogeneous(t *testing.T) {
	// With strong GPUs and transfer costs, cost-model scheduling should not
	// lose to random placement.
	dmda := simRun(t, "xeon-2gpu", "dmda", 64, 4e9, 16<<20)
	random := simRun(t, "xeon-2gpu", "random", 64, 4e9, 16<<20)
	if dmda.MakespanSeconds > random.MakespanSeconds*1.05 {
		t.Fatalf("dmda (%g) much worse than random (%g)", dmda.MakespanSeconds, random.MakespanSeconds)
	}
}

func TestSimCoherenceWriteInvalidates(t *testing.T) {
	// One datum ping-pongs between a gpu-only and an x86-only codelet:
	// every round trip must transfer the datum both ways.
	rt, err := New(Config{Platform: discover.MustPlatform("xeon-2gpu"), Mode: Sim, Scheduler: "eager"})
	if err != nil {
		t.Fatal(err)
	}
	gpuCl, err := NewCodelet("gpu-step", Impl{Arch: "gpu"})
	if err != nil {
		t.Fatal(err)
	}
	cpuCl, err := NewCodelet("cpu-step", Impl{Arch: "x86", Func: func(*TaskContext) error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	h := rt.NewHandle("pingpong", 1<<20, nil)
	const rounds = 3
	for i := 0; i < rounds; i++ {
		if err := rt.Submit(&Task{Codelet: gpuCl, Accesses: []Access{RW(h)}, Flops: 1e6}); err != nil {
			t.Fatal(err)
		}
		if err := rt.Submit(&Task{Codelet: cpuCl, Accesses: []Access{RW(h)}, Flops: 1e6}); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Each of the 6 tasks except possibly those hitting a still-valid copy
	// needs a transfer: ping-pong forces one per task.
	if rep.TransferCount != 2*rounds {
		t.Fatalf("transfers = %d; want %d", rep.TransferCount, 2*rounds)
	}
}

func TestSimReadsDoNotInvalidate(t *testing.T) {
	// After one transfer to the GPU, repeated reads need no further copies.
	rt, err := New(Config{Platform: discover.MustPlatform("xeon-2gpu"), Mode: Sim, Scheduler: "eager"})
	if err != nil {
		t.Fatal(err)
	}
	gpuCl, err := NewCodelet("gpu-read", Impl{Arch: "gpu"})
	if err != nil {
		t.Fatal(err)
	}
	h := rt.NewHandle("shared", 1<<20, nil)
	for i := 0; i < 5; i++ {
		out := rt.NewHandle("out", 1<<10, nil)
		if err := rt.Submit(&Task{Codelet: gpuCl, Accesses: []Access{R(h), W(out)}, Flops: 1e6}); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	// h moves at most once per GPU (2 devices); outs are written in place.
	if rep.TransferCount > 2 {
		t.Fatalf("transfers = %d; want <= 2", rep.TransferCount)
	}
}

func TestSimNoCompatibleUnit(t *testing.T) {
	rt, err := New(Config{Platform: discover.MustPlatform("xeon-cpu"), Mode: Sim})
	if err != nil {
		t.Fatal(err)
	}
	gpuOnly, err := NewCodelet("gpu-only", Impl{Arch: "gpu"})
	if err != nil {
		t.Fatal(err)
	}
	_ = rt.Submit(&Task{Codelet: gpuOnly})
	if _, err := rt.Run(); err == nil || !strings.Contains(err.Error(), "no unit can run") {
		t.Fatalf("err = %v", err)
	}
}

func TestSimPriorityOrdering(t *testing.T) {
	// On a single core, the high-priority task runs first even when
	// submitted last.
	rt, err := New(Config{Platform: discover.MustPlatform("xeon-1core"), Mode: Sim, Scheduler: "eager"})
	if err != nil {
		t.Fatal(err)
	}
	cl := dgemmCodelet(t)
	low := &Task{Codelet: cl, Flops: 1e9, Label: "low"}
	high := &Task{Codelet: cl, Flops: 1e9, Priority: 10, Label: "high"}
	_ = rt.Submit(low)
	_ = rt.Submit(high)
	rep, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	_ = rep
	// Both ran on the same unit; makespan equals the serial sum. Priority
	// correctness is observable through deterministic transfer-free order:
	// recheck via a dependent reader pattern instead.
	// (Order assertion: high priority index picked first.)
	// Simplest check: pickTaskIndex prefers priority.
	idx := rt.pickTaskIndex([]*Task{low, high}, &simState{})
	if idx != 1 {
		t.Fatalf("pickTaskIndex = %d; want the high-priority task", idx)
	}
}

func TestSpeedupHelper(t *testing.T) {
	a := &Report{MakespanSeconds: 10}
	b := &Report{MakespanSeconds: 2}
	if got := b.Speedup(a); got != 5 {
		t.Fatalf("speedup = %g", got)
	}
	zero := &Report{}
	if zero.Speedup(a) != 0 {
		t.Fatal("zero makespan speedup should be 0")
	}
}

func TestReportHelpers(t *testing.T) {
	r := &Report{
		PerUnit: []UnitStats{
			{ID: "a", Arch: "x86", Tasks: 2, BusySeconds: 1},
			{ID: "b", Arch: "gpu", Tasks: 0},
			{ID: "c", Arch: "gpu", Tasks: 3},
		},
		MakespanSeconds: 2,
	}
	if r.BusyUnits() != 2 {
		t.Fatalf("busy units = %d", r.BusyUnits())
	}
	if got := r.TasksOnArch("gpu"); got != 3 {
		t.Fatalf("gpu tasks = %d", got)
	}
	if _, ok := r.UnitByID("c"); !ok {
		t.Fatal("UnitByID miss")
	}
	if _, ok := r.UnitByID("zz"); ok {
		t.Fatal("UnitByID false positive")
	}
	s := r.String()
	if !strings.Contains(s, "a") || strings.Contains(s, "  b ") {
		t.Fatalf("String() = %q", s)
	}
}
