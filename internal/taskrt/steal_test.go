package taskrt

import (
	"testing"
	"time"

	"repro/internal/perfmodel"
)

// buildSkewedDmda returns a two-worker dmda dispatcher whose perfmodel makes
// worker 1 drastically slower than worker 0 at the codelet, plus the task.
func buildSkewedDmda(t *testing.T) (*dmdaDispatcher, *Task) {
	t.Helper()
	cl, err := NewCodelet("skew", Impl{Arch: "fast"}, Impl{Arch: "slow"})
	if err != nil {
		t.Fatal(err)
	}
	models := perfmodel.NewStore()
	for _, sz := range []float64{1e6, 2e6, 4e6} {
		if err := models.Model("skew", "fast").Record(sz, sz/1e12); err != nil {
			t.Fatal(err)
		}
		if err := models.Model("skew", "slow").Record(sz, sz/1e12*1e3); err != nil {
			t.Fatal(err)
		}
	}
	task := &Task{Codelet: cl, Flops: 2e6}
	d := newDmdaDispatcher([]string{"fast", "slow"}, []int{0, 0}, [][]xferCost{{{}}}, []*Task{task}, models)
	return d, task
}

// A slow worker that wins the credit for a task placed on the fast worker
// must NOT steal it: the steal is EFT-unfavorable (the fast worker clears
// its backlog, ending with that task, far sooner). The thief hands the
// credit back — so a subsequent acquire still succeeds — and the rightful
// owner collects the task. This is the regression test for the
// placement-undone-by-blind-stealing bug the tiled-factorization experiment
// exposed (DESIGN.md §12).
func TestDmdaStealDeclinedWhenEFTUnfavorable(t *testing.T) {
	d, task := buildSkewedDmda(t)
	d.push(-1, task)
	abort := make(chan struct{})
	if !d.acquire(nil, nil) {
		t.Fatal("acquire after push must succeed")
	}
	// The slow worker sweeps: it must decline and return the retry sentinel.
	got, victim := d.take(1, abort)
	if got != nil || victim != takeRetry {
		t.Fatalf("slow worker take = (%v, %d), want declined (nil, takeRetry)", got, victim)
	}
	if d.stolen(1) != 0 {
		t.Fatalf("declined sweep counted as a steal")
	}
	// The hand-back restored the credit: the owner can acquire and collect.
	if !d.acquire(nil, nil) {
		t.Fatal("acquire after credit hand-back must succeed")
	}
	got, victim = d.take(0, abort)
	if got != task || victim != -1 {
		t.Fatalf("owner take = (%v, %d), want the placed task from its own queue", got, victim)
	}
}

// The liveness valve: when declines persist with zero pool-wide completion
// progress for dmdaStealForceAfter (the victim is hung, offline, or the
// model is badly wrong), the thief must eventually steal anyway rather than
// spin forever — fault-injected hangs rely on queue rescue.
func TestDmdaStealForcedAfterPoolStall(t *testing.T) {
	d, task := buildSkewedDmda(t)
	d.push(-1, task)
	abort := make(chan struct{})
	deadline := time.Now().Add(5 * time.Second)
	for {
		if !d.acquire(nil, nil) {
			t.Fatal("acquire must succeed while the task is queued")
		}
		got, victim := d.take(1, abort)
		if got != nil {
			if victim != 0 {
				t.Fatalf("forced steal reported victim %d, want 0", victim)
			}
			if d.stolen(1) != 1 {
				t.Fatalf("forced steal not counted")
			}
			return
		}
		if victim != takeRetry {
			t.Fatalf("take = (nil, %d), want takeRetry while declining", victim)
		}
		if time.Now().After(deadline) {
			t.Fatal("force valve never fired: hung victim's queue was never rescued")
		}
	}
}
