// Package taskrt is a StarPU-like task runtime for heterogeneous platforms:
// the scheduling and data-management substrate the paper's evaluation
// (Section IV-D) targets. Applications register codelets with one
// implementation per architecture, submit tasks whose data accesses carry
// explicit modes (read / write / readwrite, matching the paper's task
// annotations), and the runtime derives inter-task dependencies, moves data
// between distinct memory spaces and maps tasks onto processing units.
//
// Two execution engines share the same task-graph front end:
//
//   - the real engine runs implementation functions on goroutine workers and
//     reports wall-clock times — used for CPU-only configurations on the
//     actual host; and
//   - the simulated engine executes the graph in virtual time on a
//     calibrated simhw.Machine built from a PDL description — the
//     substitution for the paper's GPU testbed.
//
// Schedulers are pluggable: eager (StarPU's default greedy central queue),
// dmda (deque model data aware: minimise estimated completion including
// transfer costs), heft (dmda with largest-work-first ordering) and random.
package taskrt

import (
	"fmt"
	"strconv"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/perfmodel"
	"repro/internal/trace"
)

// AccessMode declares how a task uses a data handle, mirroring the paper's
// parameter access specifiers (A:readwrite, B:read).
type AccessMode int

const (
	// Read declares a read-only access.
	Read AccessMode = iota
	// Write declares a write-only access (previous contents unused).
	Write
	// ReadWrite declares an in-place update.
	ReadWrite
)

// String returns the annotation spelling of the mode.
func (m AccessMode) String() string {
	switch m {
	case Read:
		return "read"
	case Write:
		return "write"
	case ReadWrite:
		return "readwrite"
	default:
		return fmt.Sprintf("AccessMode(%d)", int(m))
	}
}

// ParseAccessMode parses the annotation spelling ("read", "write",
// "readwrite", and the abbreviations r/w/rw).
func ParseAccessMode(s string) (AccessMode, error) {
	switch s {
	case "read", "r", "in":
		return Read, nil
	case "write", "w", "out":
		return Write, nil
	case "readwrite", "rw", "inout":
		return ReadWrite, nil
	}
	return 0, fmt.Errorf("taskrt: unknown access mode %q", s)
}

// Reads reports whether the mode observes previous contents.
func (m AccessMode) Reads() bool { return m == Read || m == ReadWrite }

// Writes reports whether the mode produces new contents.
func (m AccessMode) Writes() bool { return m == Write || m == ReadWrite }

// Mode selects the execution engine.
type Mode int

const (
	// Real executes implementation functions on goroutine workers.
	Real Mode = iota
	// Sim executes the graph in virtual time on the calibrated machine.
	Sim
)

func (m Mode) String() string {
	if m == Real {
		return "real"
	}
	return "sim"
}

// Config configures a Runtime.
type Config struct {
	// Platform describes the machine. In Sim mode it parameterises the
	// hardware simulator; in Real mode its x86 capacity bounds the worker
	// count.
	Platform *core.Platform
	// Mode selects the engine (default Real).
	Mode Mode
	// Scheduler names the scheduling policy: "eager", "dmda", "heft", "ws"
	// (work stealing) or "random". Empty defaults to "ws" in Real mode
	// (per-worker deques with stealing) and "eager" in Sim mode. The Real
	// engine implements "eager", "ws" and "dmda" (model-predicted earliest
	// finish time placement; see dispatch.go) and treats any other policy as
	// "ws"; the Sim engine implements all five.
	Scheduler string
	// Workers overrides the Real-mode worker count (default: the platform's
	// x86 unit count).
	Workers int
	// Seed seeds the random scheduler (default 1).
	Seed int64
	// Models, when non-nil, receives execution-time observations in Real
	// mode (history-based performance models à la StarPU) and feeds the
	// "dmda" scheduler's placement predictions. When nil with Scheduler
	// "dmda", the Real engine creates a private store so the policy
	// self-calibrates within the run.
	Models *perfmodel.Store
	// Trace, when non-nil, receives one event per task execution and (in
	// Sim mode) per data transfer, plus failure/retry/blacklist/recover
	// events when fault tolerance is active.
	Trace *trace.Trace
	// Faults, when non-nil, injects deterministic unit failures (see
	// FaultPlan) and activates the fault-tolerance machinery: failed tasks
	// are retried with capped exponential backoff, falling back to a
	// different implementation variant when their unit class is gone, and
	// failed units are blacklisted.
	Faults *FaultPlan
	// Retry tunes failure recovery; the zero value takes defaults. Setting
	// any field activates fault tolerance even without a FaultPlan, so real
	// codelet errors are retried instead of aborting the run.
	Retry RetryPolicy
	// Tracker, when non-nil, mirrors in-flight blacklisting into the dynamic
	// platform descriptor: unit failures emit SetOffline, recoveries emit
	// SetOnline, and units the tracker already reports offline are skipped
	// by the schedulers from the start. Engine unit ids that the tracker
	// does not know (expanded instances like "host.3", real-mode worker
	// ids) are blacklisted locally only.
	Tracker *dynamic.Tracker
}

// Run lifecycle states (Runtime.state).
const (
	stateIdle int32 = iota // accepting submissions
	stateRunning
	stateDone
)

// Runtime accepts task submissions and executes them with Run.
type Runtime struct {
	cfg     Config
	handles []*Handle
	tasks   []*Task
	nextID  int
	lastW   map[*Handle]*Task
	readers map[*Handle][]*Task
	state   atomic.Int32 // stateIdle → stateRunning → stateDone
}

// New creates a runtime. The platform must be a valid machine-model
// instance.
func New(cfg Config) (*Runtime, error) {
	if cfg.Platform == nil {
		return nil, fmt.Errorf("taskrt: nil platform")
	}
	if err := cfg.Platform.Validate(); err != nil {
		return nil, err
	}
	switch cfg.Scheduler {
	case "", "eager", "dmda", "heft", "random", "ws":
	default:
		return nil, fmt.Errorf("taskrt: unknown scheduler %q", cfg.Scheduler)
	}
	if cfg.Scheduler == "" {
		if cfg.Mode == Real {
			cfg.Scheduler = "ws"
		} else {
			cfg.Scheduler = "eager"
		}
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(); err != nil {
			return nil, err
		}
	}
	return &Runtime{
		cfg:     cfg,
		lastW:   map[*Handle]*Task{},
		readers: map[*Handle][]*Task{},
	}, nil
}

// Submit registers a task for execution and derives its dependencies from
// the data-access history: readers depend on the last writer of each handle;
// writers additionally depend on all readers since that write (anti/output
// dependencies), exactly the implicit data-driven ordering StarPU applies.
func (rt *Runtime) Submit(t *Task) error {
	if err := rt.submittable(); err != nil {
		return err
	}
	return rt.submitOne(t)
}

// SubmitBatch registers tasks in order with one lifecycle check for the
// whole batch — the submission-side companion of the dispatcher's batched
// push path. Dependency derivation is identical to calling Submit in a
// loop: tasks later in the batch may depend on earlier ones (through shared
// handles or After). On error the failing task is reported by its batch
// index; tasks before it remain registered, exactly as sequential Submit
// calls would leave them.
func (rt *Runtime) SubmitBatch(tasks []*Task) error {
	if err := rt.submittable(); err != nil {
		return err
	}
	for i, t := range tasks {
		if err := rt.submitOne(t); err != nil {
			return fmt.Errorf("batch task %d: %w", i, err)
		}
	}
	return nil
}

// submittable checks the run lifecycle allows submissions.
func (rt *Runtime) submittable() error {
	switch rt.state.Load() {
	case stateRunning:
		return fmt.Errorf("taskrt: Submit while Run is in progress; submit all tasks before Run")
	case stateDone:
		return fmt.Errorf("taskrt: Submit after Run; a runtime is single-shot, create a new one")
	}
	return nil
}

// submitOne validates and registers one task (lifecycle already checked).
func (rt *Runtime) submitOne(t *Task) error {
	if t.Codelet == nil {
		return fmt.Errorf("taskrt: task without codelet")
	}
	if len(t.Codelet.Impls) == 0 {
		return fmt.Errorf("taskrt: codelet %q has no implementations", t.Codelet.Name)
	}
	for i, a := range t.Accesses {
		if a.Handle == nil {
			return fmt.Errorf("taskrt: task %q accesses nil handle", t.Codelet.Name)
		}
		// Tasks touch a handful of handles: a linear scan beats allocating a
		// set on every submission.
		for _, b := range t.Accesses[:i] {
			if b.Handle == a.Handle {
				return fmt.Errorf("taskrt: task %q accesses handle %q twice", t.Codelet.Name, a.Handle.Name)
			}
		}
	}
	t.id = rt.nextID
	rt.nextID++

	addDep := func(dep *Task) {
		if dep == nil || dep == t {
			return
		}
		for _, d := range t.deps {
			if d == dep {
				return
			}
		}
		t.deps = append(t.deps, dep)
		dep.dependents = append(dep.dependents, t)
	}
	for _, dep := range t.After {
		if dep == nil {
			return fmt.Errorf("taskrt: task %q has nil explicit dependency", t.Codelet.Name)
		}
		found := false
		for _, prior := range rt.tasks {
			if prior == dep {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("taskrt: task %q depends on a task not yet submitted", t.Codelet.Name)
		}
		addDep(dep)
	}
	for _, a := range t.Accesses {
		h := a.Handle
		if a.Mode.Reads() || a.Mode == Write {
			// Even pure writes must wait for the previous writer (output
			// dependency) and for readers (anti dependency).
			addDep(rt.lastW[h])
		}
		if a.Mode.Writes() {
			for _, r := range rt.readers[h] {
				addDep(r)
			}
			rt.readers[h] = nil
			rt.lastW[h] = t
		} else {
			rt.readers[h] = append(rt.readers[h], t)
		}
	}
	rt.tasks = append(rt.tasks, t)
	return nil
}

// Tasks returns the number of submitted tasks.
func (rt *Runtime) Tasks() int { return len(rt.tasks) }

// Graph hands the submitted task graph to an external engine: it returns
// every task (in submission order, dependencies derived) together with every
// registered handle, and consumes the runtime — the same single-shot
// lifecycle Run enforces, so a graph can be executed either locally (Run) or
// by an external engine (the cluster master), never both. Further Submit or
// Run calls fail with the usual lifecycle errors.
func (rt *Runtime) Graph() (tasks []*Task, handles []*Handle, err error) {
	if !rt.state.CompareAndSwap(stateIdle, stateDone) {
		return nil, nil, fmt.Errorf("taskrt: Graph after Run or Graph; a runtime is single-shot, create a new one")
	}
	return rt.tasks, rt.handles, nil
}

// Run executes every submitted task and returns the execution report. A
// runtime is single-shot: Run may be called exactly once, and submissions
// are rejected from the moment it starts. Calling Run again — concurrently
// or after completion — returns a descriptive error instead of rerunning.
func (rt *Runtime) Run() (*Report, error) {
	if !rt.state.CompareAndSwap(stateIdle, stateRunning) {
		if rt.state.Load() == stateRunning {
			return nil, fmt.Errorf("taskrt: Run called twice; a Run is already in progress")
		}
		return nil, fmt.Errorf("taskrt: Run called twice; the runtime already ran, create a new one")
	}
	defer rt.state.Store(stateDone)
	var (
		rep *Report
		err error
	)
	switch rt.cfg.Mode {
	case Sim:
		rep, err = rt.runSim()
	case Real:
		rep, err = rt.runReal()
	default:
		return nil, fmt.Errorf("taskrt: unknown mode %v", rt.cfg.Mode)
	}
	if err != nil {
		return nil, err
	}
	recordReport(rep)
	if tr := rt.cfg.Trace; tr != nil {
		tr.SetMeta("mode", rt.cfg.Mode.String())
		tr.SetMeta("scheduler", rt.cfg.Scheduler)
		tr.SetMeta("tasks", strconv.Itoa(rep.Tasks))
		// The most recent traced run backs pdlserved's /debug/trace.
		trace.Publish(tr)
	}
	return rep, nil
}
