package taskrt

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/perfmodel"
)

func cpuPlatform(t testing.TB, cores int) *core.Platform {
	t.Helper()
	pl, err := core.NewBuilder("cpu").
		Master("host", core.Arch("x86"), core.Qty(cores)).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func noopCodelet(t testing.TB, name string) *Codelet {
	t.Helper()
	c, err := NewCodelet(name, Impl{Arch: "x86", Func: func(*TaskContext) error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestParseAccessMode(t *testing.T) {
	for s, want := range map[string]AccessMode{
		"read": Read, "r": Read, "in": Read,
		"write": Write, "w": Write, "out": Write,
		"readwrite": ReadWrite, "rw": ReadWrite, "inout": ReadWrite,
	} {
		got, err := ParseAccessMode(s)
		if err != nil || got != want {
			t.Errorf("ParseAccessMode(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseAccessMode("peek"); err == nil {
		t.Fatal("unknown mode must fail")
	}
	if Read.String() != "read" || ReadWrite.String() != "readwrite" {
		t.Fatal("String spelling wrong")
	}
	if !ReadWrite.Reads() || !ReadWrite.Writes() || Read.Writes() || Write.Reads() {
		t.Fatal("Reads/Writes predicates wrong")
	}
}

func TestNewCodeletValidation(t *testing.T) {
	if _, err := NewCodelet(""); err == nil {
		t.Fatal("empty name must fail")
	}
	if _, err := NewCodelet("x"); err == nil {
		t.Fatal("no impls must fail")
	}
	if _, err := NewCodelet("x", Impl{Arch: ""}); err == nil {
		t.Fatal("impl without arch must fail")
	}
	if _, err := NewCodelet("x", Impl{Arch: "x86"}, Impl{Arch: "x86"}); err == nil {
		t.Fatal("duplicate arch must fail")
	}
	c, err := NewCodelet("x", Impl{Arch: "x86"}, Impl{Arch: "gpu"})
	if err != nil {
		t.Fatal(err)
	}
	if c.ImplFor("gpu") == nil || c.ImplFor("spe") != nil {
		t.Fatal("ImplFor wrong")
	}
	if len(c.Archs()) != 2 {
		t.Fatal("Archs wrong")
	}
}

func TestNewConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil platform must fail")
	}
	if _, err := New(Config{Platform: &core.Platform{}}); err == nil {
		t.Fatal("invalid platform must fail")
	}
	if _, err := New(Config{Platform: cpuPlatform(t, 2), Scheduler: "lottery"}); err == nil {
		t.Fatal("unknown scheduler must fail")
	}
}

func TestSubmitValidation(t *testing.T) {
	rt, err := New(Config{Platform: cpuPlatform(t, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Submit(&Task{}); err == nil {
		t.Fatal("task without codelet must fail")
	}
	if err := rt.Submit(&Task{Codelet: &Codelet{Name: "none"}}); err == nil {
		t.Fatal("codelet without impls must fail")
	}
	cl := noopCodelet(t, "noop")
	h := rt.NewHandle("h", 8, nil)
	if err := rt.Submit(&Task{Codelet: cl, Accesses: []Access{R(h), W(h)}}); err == nil {
		t.Fatal("duplicate handle access must fail")
	}
	if err := rt.Submit(&Task{Codelet: cl, Accesses: []Access{{Handle: nil, Mode: Read}}}); err == nil {
		t.Fatal("nil handle must fail")
	}
}

func TestDependencyDerivation(t *testing.T) {
	rt, err := New(Config{Platform: cpuPlatform(t, 2)})
	if err != nil {
		t.Fatal(err)
	}
	cl := noopCodelet(t, "noop")
	a := rt.NewHandle("a", 8, nil)
	b := rt.NewHandle("b", 8, nil)

	w1 := &Task{Codelet: cl, Accesses: []Access{W(a)}, Label: "w1"}
	r1 := &Task{Codelet: cl, Accesses: []Access{R(a)}, Label: "r1"}
	r2 := &Task{Codelet: cl, Accesses: []Access{R(a)}, Label: "r2"}
	w2 := &Task{Codelet: cl, Accesses: []Access{W(a)}, Label: "w2"}
	rw := &Task{Codelet: cl, Accesses: []Access{RW(a), R(b)}, Label: "rw"}
	ind := &Task{Codelet: cl, Accesses: []Access{R(b)}, Label: "ind"}

	for _, task := range []*Task{w1, r1, r2, w2, rw, ind} {
		if err := rt.Submit(task); err != nil {
			t.Fatal(err)
		}
	}
	depIDs := func(task *Task) []string {
		var out []string
		for _, d := range task.Deps() {
			out = append(out, d.Label)
		}
		return out
	}
	// RAW: readers depend on w1.
	if got := depIDs(r1); len(got) != 1 || got[0] != "w1" {
		t.Fatalf("r1 deps = %v", got)
	}
	if got := depIDs(r2); len(got) != 1 || got[0] != "w1" {
		t.Fatalf("r2 deps = %v", got)
	}
	// WAR+WAW: w2 depends on both readers and the previous writer.
	got := depIDs(w2)
	want := map[string]bool{"w1": true, "r1": true, "r2": true}
	if len(got) != 3 {
		t.Fatalf("w2 deps = %v", got)
	}
	for _, d := range got {
		if !want[d] {
			t.Fatalf("w2 deps = %v", got)
		}
	}
	// rw depends on w2 (RAW on a); nothing else wrote b.
	if got := depIDs(rw); len(got) != 1 || got[0] != "w2" {
		t.Fatalf("rw deps = %v", got)
	}
	// Independent reader of b has no deps.
	if got := depIDs(ind); len(got) != 0 {
		t.Fatalf("ind deps = %v", got)
	}
}

func TestRealExecutionRunsKernelsWithPayloads(t *testing.T) {
	rt, err := New(Config{Platform: cpuPlatform(t, 4)})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]float64, 100)
	h := rt.NewHandle("vec", 800, data)
	var calls int32
	cl, err := NewCodelet("fill", Impl{Arch: "x86", Func: func(tc *TaskContext) error {
		atomic.AddInt32(&calls, 1)
		v := tc.Payload(0).([]float64)
		for i := range v {
			v[i]++
		}
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Three sequential RW tasks must chain and run exactly 3 times.
	for i := 0; i < 3; i++ {
		if err := rt.Submit(&Task{Codelet: cl, Accesses: []Access{RW(h)}, Flops: 100}); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("kernel ran %d times", calls)
	}
	if data[0] != 3 || data[99] != 3 {
		t.Fatalf("payload = %g (dependency order violated?)", data[0])
	}
	if rep.Mode != Real || rep.Tasks != 3 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.MakespanSeconds <= 0 {
		t.Fatal("makespan must be positive")
	}
	total := 0
	for _, u := range rep.PerUnit {
		total += u.Tasks
	}
	if total != 3 {
		t.Fatalf("per-unit tasks = %d", total)
	}
}

func TestRealExecutionParallelismAcrossIndependentTasks(t *testing.T) {
	rt, err := New(Config{Platform: cpuPlatform(t, 4), Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCodelet("sleepy", Impl{Arch: "x86", Func: func(*TaskContext) error {
		time.Sleep(time.Millisecond)
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		h := rt.NewHandle(fmt.Sprint(i), 8, nil)
		if err := rt.Submit(&Task{Codelet: cl, Accesses: []Access{W(h)}}); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.BusyUnits() < 2 {
		t.Fatalf("expected multiple busy workers, got %d", rep.BusyUnits())
	}
}

func TestRealExecutionKernelError(t *testing.T) {
	rt, err := New(Config{Platform: cpuPlatform(t, 2)})
	if err != nil {
		t.Fatal(err)
	}
	boom, err := NewCodelet("boom", Impl{Arch: "x86", Func: func(*TaskContext) error {
		return fmt.Errorf("kaput")
	}})
	if err != nil {
		t.Fatal(err)
	}
	h := rt.NewHandle("h", 8, nil)
	_ = rt.Submit(&Task{Codelet: boom, Accesses: []Access{W(h)}})
	_ = rt.Submit(&Task{Codelet: boom, Accesses: []Access{RW(h)}})
	if _, err := rt.Run(); err == nil || !strings.Contains(err.Error(), "kaput") {
		t.Fatalf("err = %v", err)
	}
}

func TestRealExecutionMissingImpl(t *testing.T) {
	rt, err := New(Config{Platform: cpuPlatform(t, 2)})
	if err != nil {
		t.Fatal(err)
	}
	gpuOnly, err := NewCodelet("gpu-only", Impl{Arch: "gpu"})
	if err != nil {
		t.Fatal(err)
	}
	_ = rt.Submit(&Task{Codelet: gpuOnly})
	if _, err := rt.Run(); err == nil || !strings.Contains(err.Error(), "no real implementation") {
		t.Fatalf("err = %v", err)
	}
}

func TestRuntimeSingleShot(t *testing.T) {
	rt, err := New(Config{Platform: cpuPlatform(t, 2)})
	if err != nil {
		t.Fatal(err)
	}
	_ = rt.Submit(&Task{Codelet: noopCodelet(t, "n")})
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if err := rt.Submit(&Task{Codelet: noopCodelet(t, "n")}); err == nil {
		t.Fatal("submit after run must fail")
	}
	if _, err := rt.Run(); err == nil {
		t.Fatal("second run must fail")
	}
}

func TestRealModeRecordsPerfModels(t *testing.T) {
	store := perfmodel.NewStore()
	rt, err := New(Config{Platform: cpuPlatform(t, 2), Models: store})
	if err != nil {
		t.Fatal(err)
	}
	cl := noopCodelet(t, "modelled")
	h := rt.NewHandle("h", 8, nil)
	_ = rt.Submit(&Task{Codelet: cl, Accesses: []Access{W(h)}, Flops: 1e6})
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if store.Model("modelled", "x86").Len() != 1 {
		t.Fatal("model sample not recorded")
	}
}
