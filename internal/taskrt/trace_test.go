package taskrt

import (
	"strings"
	"testing"

	"repro/internal/discover"
	"repro/internal/trace"
)

func TestSimTraceRecordsTasksAndTransfers(t *testing.T) {
	tr := trace.New()
	rt, err := New(Config{
		Platform:  discover.MustPlatform("xeon-2gpu"),
		Mode:      Sim,
		Scheduler: "dmda",
		Trace:     tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	submitTiles(t, rt, 16, 4e9, 8<<20)
	rep, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	// One task event per task.
	taskEvents := 0
	transferEvents := 0
	for _, e := range tr.Events() {
		switch e.Kind {
		case trace.Task:
			taskEvents++
			if e.End < e.Start {
				t.Fatalf("negative duration event %+v", e)
			}
		case trace.Transfer:
			transferEvents++
		}
	}
	if taskEvents != rep.Tasks {
		t.Fatalf("task events = %d; want %d", taskEvents, rep.Tasks)
	}
	if transferEvents != rep.TransferCount {
		t.Fatalf("transfer events = %d; want %d", transferEvents, rep.TransferCount)
	}
	// Trace makespan agrees with the report.
	if diff := tr.Makespan() - rep.MakespanSeconds; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("trace makespan %g != report %g", tr.Makespan(), rep.MakespanSeconds)
	}
	if !strings.Contains(tr.Gantt(60), "#") {
		t.Fatal("gantt empty")
	}
}

func TestRealTraceRecordsTasks(t *testing.T) {
	tr := trace.New()
	rt, err := New(Config{Platform: cpuPlatform(t, 2), Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	cl := noopCodelet(t, "traced")
	for i := 0; i < 5; i++ {
		h := rt.NewHandle("h", 8, nil)
		if err := rt.Submit(&Task{Codelet: cl, Accesses: []Access{W(h)}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 5 {
		t.Fatalf("trace events = %d", tr.Len())
	}
	for _, e := range tr.Events() {
		if e.Kind != trace.Task || !strings.HasPrefix(e.Unit, "worker") {
			t.Fatalf("event = %+v", e)
		}
	}
}

// The causal span layer: real-mode Task events carry the task id, the
// parent ids (DAG edges), the executing worker, and attempt 0; the runtime
// stamps run metadata and publishes the trace for /debug/trace.
func TestRealTraceCausalSpans(t *testing.T) {
	tr := trace.New()
	rt, err := New(Config{Platform: cpuPlatform(t, 2), Scheduler: "ws", Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	cl := noopCodelet(t, "span")
	root := &Task{Codelet: cl, Label: "root"}
	if err := rt.Submit(root); err != nil {
		t.Fatal(err)
	}
	var mids []*Task
	for i := 0; i < 3; i++ {
		m := &Task{Codelet: cl, After: []*Task{root}}
		if err := rt.Submit(m); err != nil {
			t.Fatal(err)
		}
		mids = append(mids, m)
	}
	join := &Task{Codelet: cl, Label: "join", After: mids}
	if err := rt.Submit(join); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}

	events := tr.OfKind(trace.Task)
	if len(events) != 5 {
		t.Fatalf("task events = %d; want 5", len(events))
	}
	byID := map[int]trace.Event{}
	for _, e := range events {
		if e.TaskID < 0 || e.Attempt != 0 || e.Worker < 0 {
			t.Fatalf("span fields incomplete: %+v", e)
		}
		byID[e.TaskID] = e
	}
	if e := byID[root.ID()]; len(e.ParentIDs) != 0 || e.Label != "root" {
		t.Fatalf("root span = %+v", e)
	}
	for _, m := range mids {
		if e := byID[m.ID()]; len(e.ParentIDs) != 1 || e.ParentIDs[0] != root.ID() {
			t.Fatalf("middle span parents = %+v", e)
		}
	}
	if e := byID[join.ID()]; len(e.ParentIDs) != 3 {
		t.Fatalf("join span parents = %+v", e)
	}

	// The diamond's critical path is root → some middle → join.
	if cp := tr.CriticalPath(); len(cp.TaskIDs) != 3 ||
		cp.TaskIDs[0] != root.ID() || cp.TaskIDs[2] != join.ID() {
		t.Fatalf("critical path = %v", cp.TaskIDs)
	}

	meta := tr.Meta()
	if meta["mode"] != "real" || meta["scheduler"] != "ws" || meta["tasks"] != "5" || meta["workers"] != "2" {
		t.Fatalf("meta = %v", meta)
	}
	if trace.Published() != tr {
		t.Fatal("Run did not publish the trace")
	}
}

// Sim-mode spans carry the same causal identity as real-mode ones.
func TestSimTraceCausalSpans(t *testing.T) {
	tr := trace.New()
	rt, err := New(Config{
		Platform:  discover.MustPlatform("xeon-2gpu"),
		Mode:      Sim,
		Scheduler: "dmda",
		Trace:     tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	submitTiles(t, rt, 8, 4e9, 8<<20)
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	for _, e := range tr.OfKind(trace.Task) {
		if e.TaskID < 0 || e.Worker < 0 {
			t.Fatalf("sim span incomplete: %+v", e)
		}
	}
	for _, e := range tr.OfKind(trace.Transfer) {
		if e.From == "" || e.Worker < -1 {
			t.Fatalf("transfer span lacks source node: %+v", e)
		}
	}
}

func TestWSScheduler(t *testing.T) {
	// ws completes everything deterministically and spreads independent
	// tasks across cores.
	rep := simRun(t, "xeon-cpu", "ws", 64, 2e9, 1<<20)
	if rep.Tasks != 64 {
		t.Fatalf("tasks = %d", rep.Tasks)
	}
	if rep.BusyUnits() != 8 {
		t.Fatalf("busy units = %d; ws should spread work", rep.BusyUnits())
	}
	rep2 := simRun(t, "xeon-cpu", "ws", 64, 2e9, 1<<20)
	if rep.MakespanSeconds != rep2.MakespanSeconds {
		t.Fatal("ws nondeterministic")
	}
	// On the heterogeneous box it still uses the GPUs for some tasks.
	het := simRun(t, "xeon-2gpu", "ws", 64, 2e9, 1<<20)
	if het.TasksOnArch("gpu") == 0 {
		t.Fatal("ws never stole onto the GPUs")
	}
}
