package taskrt

import (
	"strings"
	"testing"

	"repro/internal/discover"
)

func TestWherePinsPlacement(t *testing.T) {
	// Pin all tasks to the GPUs even though an x86 impl exists and the
	// eager scheduler would otherwise prefer the idle CPU cores.
	rt, err := New(Config{Platform: discover.MustPlatform("xeon-2gpu"), Mode: Sim, Scheduler: "eager"})
	if err != nil {
		t.Fatal(err)
	}
	cl := dgemmCodelet(t)
	for i := 0; i < 12; i++ {
		h := rt.NewHandle("c", 1<<20, nil)
		if err := rt.Submit(&Task{
			Codelet:  cl,
			Accesses: []Access{W(h)},
			Flops:    1e9,
			Where:    []string{"dev0", "dev1"},
		}); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.TasksOnArch("gpu"); got != 12 {
		t.Fatalf("gpu tasks = %d; want all 12", got)
	}
	if got := rep.TasksOnArch("x86"); got != 0 {
		t.Fatalf("x86 tasks = %d; want 0", got)
	}
}

func TestWhereMatchesExpandedInstances(t *testing.T) {
	// "host" must match the quantity-expanded host.0..host.7 instances.
	rt, err := New(Config{Platform: discover.MustPlatform("xeon-2gpu"), Mode: Sim, Scheduler: "eager"})
	if err != nil {
		t.Fatal(err)
	}
	cl := dgemmCodelet(t)
	for i := 0; i < 16; i++ {
		h := rt.NewHandle("c", 1<<20, nil)
		if err := rt.Submit(&Task{
			Codelet:  cl,
			Accesses: []Access{W(h)},
			Flops:    1e9,
			Where:    []string{"host"},
		}); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.TasksOnArch("gpu") != 0 {
		t.Fatal("group-pinned tasks leaked onto the GPUs")
	}
	if rep.BusyUnits() != 8 {
		t.Fatalf("busy units = %d; want all 8 host cores", rep.BusyUnits())
	}
}

func TestWhereUnsatisfiableFails(t *testing.T) {
	rt, err := New(Config{Platform: discover.MustPlatform("xeon-cpu"), Mode: Sim})
	if err != nil {
		t.Fatal(err)
	}
	cl := dgemmCodelet(t)
	_ = rt.Submit(&Task{Codelet: cl, Flops: 1, Where: []string{"dev0"}})
	if _, err := rt.Run(); err == nil || !strings.Contains(err.Error(), "no unit can run") {
		t.Fatalf("err = %v", err)
	}
}

func TestUnitAllowedPrefixSemantics(t *testing.T) {
	cases := []struct {
		id    string
		where []string
		want  bool
	}{
		{"host.3", []string{"host"}, true},
		{"host", []string{"host"}, true},
		{"hostile", []string{"host"}, false},
		{"dev0", []string{"host", "dev0"}, true},
		{"dev0.1", []string{"dev0"}, true},
		{"dev1", []string{"dev0"}, false},
	}
	for _, c := range cases {
		if got := unitAllowed(c.id, c.where); got != c.want {
			t.Errorf("unitAllowed(%q, %v) = %v; want %v", c.id, c.where, got, c.want)
		}
	}
}
