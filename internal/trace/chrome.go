package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Chrome trace_event export: the JSON object format consumed by Perfetto
// and chrome://tracing. Each unit becomes one named thread lane under a
// single "pdl" process; task/transfer/failure/retry spans are complete ("X")
// events, steals/blacklists/recoveries are instants ("i"), dependency edges
// and steal provenance are flow events ("s"/"f") drawn as arrows between
// lanes. Timestamps are microseconds, per the format.
//
// The exporter writes every span's causal identifiers (kind, task, parents,
// attempt, worker, from, bytes, unit) into args, so ReadChrome can
// reconstruct the original Trace losslessly — the Chrome file is a full
// serialisation, not just a rendering.

type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   int            `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

const chromePid = 0

// usec converts trace seconds to trace_event microseconds.
func usec(s float64) float64 { return s * 1e6 }

// eventArgs serialises the span identifiers for lossless re-import.
func eventArgs(e Event) map[string]any {
	args := map[string]any{
		"kind": e.Kind.String(),
		"unit": e.Unit,
		"task": e.TaskID,
	}
	if len(e.ParentIDs) > 0 {
		args["parents"] = e.ParentIDs
	}
	if e.Attempt != 0 {
		args["attempt"] = e.Attempt
	}
	if e.Worker != 0 {
		args["worker"] = e.Worker
	}
	if e.Bytes != 0 {
		args["bytes"] = e.Bytes
	}
	if e.From != "" {
		args["from"] = e.From
	}
	if e.Transfer != 0 {
		args["transfer"] = e.Transfer
	}
	if e.Label != "" {
		args["label"] = e.Label
	}
	if e.Node != "" {
		args["node"] = e.Node
	}
	return args
}

// WriteChrome writes the trace in Chrome trace_event JSON. Output is
// deterministic for a given trace: lanes are sorted by unit id, events by
// (start, unit, label), flow ids assigned in that order. Events from
// different cluster nodes (Event.Node) become separate trace processes —
// one pid per node, "pdl" (pid 0) for node-less events — so a merged
// multi-node trace renders with per-node lane groups in Perfetto.
func (t *Trace) WriteChrome(w io.Writer) error {
	events := t.Events()
	meta := t.Meta()

	// Process assignment: sorted node names → pids. Node-less events share
	// the historical "pdl" process at pid 0.
	pidOf := map[string]int{}
	var nodes []string
	for _, e := range events {
		if e.Node != "" {
			if _, ok := pidOf[e.Node]; !ok {
				pidOf[e.Node] = 0
				nodes = append(nodes, e.Node)
			}
		}
	}
	sort.Strings(nodes)
	for i, n := range nodes {
		pidOf[n] = chromePid + 1 + i
	}
	pidFor := func(e Event) int {
		if e.Node == "" {
			return chromePid
		}
		return pidOf[e.Node]
	}

	// Lane assignment: per process, sorted unit ids → tids 0..n-1.
	type laneKey struct {
		pid  int
		unit string
	}
	laneOf := map[laneKey]int{}
	unitsByPid := map[int][]string{}
	for _, e := range events {
		pid := pidFor(e)
		k := laneKey{pid, e.Unit}
		if _, ok := laneOf[k]; !ok && e.Unit != "" {
			laneOf[k] = 0
			unitsByPid[pid] = append(unitsByPid[pid], e.Unit)
		}
	}
	var out []chromeEvent
	emitProcess := func(pid int, name string) {
		out = append(out, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": name},
		})
		units := unitsByPid[pid]
		sort.Strings(units)
		for i, u := range units {
			laneOf[laneKey{pid, u}] = i
			out = append(out, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: i,
				Args: map[string]any{"name": u},
			})
			out = append(out, chromeEvent{
				Name: "thread_sort_index", Ph: "M", Pid: pid, Tid: i,
				Args: map[string]any{"sort_index": i},
			})
		}
	}
	if len(unitsByPid[chromePid]) > 0 || len(nodes) == 0 {
		emitProcess(chromePid, "pdl")
	}
	for _, n := range nodes {
		emitProcess(pidOf[n], "node:"+n)
	}

	// Successful executions by task id, for dependency flow endpoints.
	taskEvent := map[int]Event{}
	for _, e := range events {
		if e.Kind != Task || e.TaskID < 0 {
			continue
		}
		if prev, ok := taskEvent[e.TaskID]; !ok || e.End > prev.End {
			taskEvent[e.TaskID] = e
		}
	}

	name := func(e Event) string {
		if e.Label != "" {
			return e.Label
		}
		return e.Kind.String()
	}

	flowID := 0
	for _, e := range events {
		pid := pidFor(e)
		lane := laneOf[laneKey{pid, e.Unit}]
		switch e.Kind {
		case Task, Transfer, Failure, Retry:
			out = append(out, chromeEvent{
				Name: name(e), Cat: e.Kind.String(), Ph: "X",
				Ts: usec(e.Start), Dur: usec(e.Duration()),
				Pid: pid, Tid: lane, Args: eventArgs(e),
			})
			if e.Kind != Task {
				break
			}
			// Dependency arrows: parent end → child start.
			for _, p := range e.ParentIDs {
				pe, ok := taskEvent[p]
				if !ok {
					continue
				}
				ppid := pidFor(pe)
				flowID++
				out = append(out,
					chromeEvent{
						Name: "dep", Cat: "dep", Ph: "s", ID: flowID,
						Ts: usec(pe.End), Pid: ppid, Tid: laneOf[laneKey{ppid, pe.Unit}],
					},
					chromeEvent{
						Name: "dep", Cat: "dep", Ph: "f", BP: "e", ID: flowID,
						Ts: usec(e.Start), Pid: pid, Tid: lane,
					})
			}
		case Steal, Blacklist, Recover, Place, Straggler:
			out = append(out, chromeEvent{
				Name: e.Kind.String(), Cat: e.Kind.String(), Ph: "i",
				Ts: usec(e.Start), Pid: pid, Tid: lane, S: "t",
				Args: eventArgs(e),
			})
			// Steal arrows: victim lane → thief lane (same process: steals
			// never cross nodes).
			if e.Kind == Steal && e.From != "" {
				if victim, ok := laneOf[laneKey{pid, e.From}]; ok {
					flowID++
					out = append(out,
						chromeEvent{
							Name: "steal", Cat: "steal", Ph: "s", ID: flowID,
							Ts: usec(e.Start), Pid: pid, Tid: victim,
						},
						chromeEvent{
							Name: "steal", Cat: "steal", Ph: "f", BP: "e", ID: flowID,
							Ts: usec(e.Start), Pid: pid, Tid: lane,
						})
				}
			}
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeFile{
		TraceEvents:     out,
		DisplayTimeUnit: "ms",
		OtherData:       meta,
	})
}

// WriteChromeFile writes the Chrome trace to a file.
func (t *Trace) WriteChromeFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadChrome reconstructs a Trace from Chrome trace_event JSON previously
// produced by WriteChrome (metadata and flow events are consumed, spans are
// rebuilt from the args written by the exporter).
func ReadChrome(r io.Reader) (*Trace, error) {
	var file chromeFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&file); err != nil {
		return nil, fmt.Errorf("trace: decoding chrome trace: %w", err)
	}
	return fromChrome(&file)
}

func fromChrome(file *chromeFile) (*Trace, error) {
	t := New()
	for k, v := range file.OtherData {
		t.SetMeta(k, v)
	}
	for _, ce := range file.TraceEvents {
		if ce.Ph != "X" && ce.Ph != "i" {
			continue // metadata and flow events carry no spans
		}
		kindStr, _ := ce.Args["kind"].(string)
		if kindStr == "" {
			return nil, fmt.Errorf("trace: chrome event %q lacks args.kind (not a pdl trace?)", ce.Name)
		}
		kind, err := ParseKind(kindStr)
		if err != nil {
			return nil, err
		}
		e := Event{
			Kind:   kind,
			Start:  ce.Ts / 1e6,
			End:    (ce.Ts + ce.Dur) / 1e6,
			TaskID: argInt(ce.Args, "task", NoTask),
			Worker: argInt(ce.Args, "worker", 0),
		}
		e.Unit, _ = ce.Args["unit"].(string)
		e.Label, _ = ce.Args["label"].(string)
		e.From, _ = ce.Args["from"].(string)
		e.Node, _ = ce.Args["node"].(string)
		e.Attempt = argInt(ce.Args, "attempt", 0)
		e.Bytes = int64(argInt(ce.Args, "bytes", 0))
		e.Transfer, _ = ce.Args["transfer"].(float64)
		if ps, ok := ce.Args["parents"].([]any); ok {
			for _, p := range ps {
				if f, ok := p.(float64); ok {
					e.ParentIDs = append(e.ParentIDs, int(f))
				}
			}
		}
		t.Record(e)
	}
	return t, nil
}

// argInt reads an integer arg (decoded by encoding/json as float64).
func argInt(args map[string]any, key string, def int) int {
	if f, ok := args[key].(float64); ok {
		return int(f)
	}
	return def
}
