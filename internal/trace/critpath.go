package trace

import "sort"

// CriticalPath is the longest dependency chain through the recorded task
// DAG, weighted by execution time: the lower bound on makespan no amount of
// added parallelism can beat. Comparing Length to the trace makespan tells
// how much of a run was serialised on the chain versus lost to scheduling,
// transfers and contention.
type CriticalPath struct {
	// Length is the summed execution time (seconds) of the tasks on the
	// path.
	Length float64
	// TaskIDs are the task ids along the path, in dependency order.
	TaskIDs []int
	// Events are the corresponding Task events, in the same order.
	Events []Event
}

// CriticalPath extracts the critical path from the recorded Task events,
// following each event's ParentIDs. When a task was retried, the successful
// execution (the latest Task event for its id) is used; failed attempts
// (Failure events) never appear on the path. Tasks whose parents were not
// traced are treated as roots.
func (t *Trace) CriticalPath() CriticalPath {
	events := t.snapshot()

	// Latest successful execution per task id.
	byID := map[int]Event{}
	for _, e := range events {
		if e.Kind != Task || e.TaskID < 0 {
			continue
		}
		if prev, ok := byID[e.TaskID]; !ok || e.End > prev.End {
			byID[e.TaskID] = e
		}
	}
	if len(byID) == 0 {
		return CriticalPath{}
	}

	// Longest path by memoised DFS over the parent edges. A visiting guard
	// breaks cycles defensively (well-formed traces are acyclic: a parent is
	// always submitted before its dependents).
	length := map[int]float64{}
	via := map[int]int{}
	const visiting = -2.0
	var chain func(id int) float64
	chain = func(id int) float64 {
		if l, ok := length[id]; ok {
			if l == visiting {
				return 0
			}
			return l
		}
		e := byID[id]
		length[id] = visiting
		best, bestVia := 0.0, NoTask
		for _, p := range e.ParentIDs {
			if _, ok := byID[p]; !ok {
				continue
			}
			if l := chain(p); l > best || bestVia == NoTask {
				best, bestVia = l, p
			}
		}
		l := e.Duration() + best
		length[id] = l
		via[id] = bestVia
		return l
	}
	ids := make([]int, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	tail, tailLen := ids[0], -1.0
	for _, id := range ids {
		if l := chain(id); l > tailLen {
			tail, tailLen = id, l
		}
	}

	// Reconstruct tail → root, then reverse into dependency order. The seen
	// guard terminates reconstruction if a cycle survived into the via map.
	var path []int
	seen := map[int]bool{}
	for id := tail; id != NoTask && !seen[id]; id = via[id] {
		seen[id] = true
		path = append(path, id)
	}
	cp := CriticalPath{Length: tailLen}
	for i := len(path) - 1; i >= 0; i-- {
		cp.TaskIDs = append(cp.TaskIDs, path[i])
		cp.Events = append(cp.Events, byID[path[i]])
	}
	return cp
}
