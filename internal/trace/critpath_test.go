package trace

import (
	"reflect"
	"testing"
)

// A known diamond DAG: 0 → {1, 2} → 3, where the 0→2→3 arm carries the most
// execution time, so it must be the critical path.
func TestCriticalPathKnownDAG(t *testing.T) {
	tr := New()
	tr.Record(Event{Kind: Task, Unit: "a", TaskID: 0, Start: 0, End: 2})
	tr.Record(Event{Kind: Task, Unit: "b", TaskID: 1, ParentIDs: []int{0}, Start: 2, End: 3})
	tr.Record(Event{Kind: Task, Unit: "a", TaskID: 2, ParentIDs: []int{0}, Start: 2, End: 6})
	tr.Record(Event{Kind: Task, Unit: "a", TaskID: 3, ParentIDs: []int{1, 2}, Start: 6, End: 7})
	cp := tr.CriticalPath()
	if !reflect.DeepEqual(cp.TaskIDs, []int{0, 2, 3}) {
		t.Fatalf("path = %v; want [0 2 3]", cp.TaskIDs)
	}
	if cp.Length != 2+4+1 {
		t.Fatalf("length = %g; want 7", cp.Length)
	}
	if len(cp.Events) != 3 || cp.Events[1].TaskID != 2 {
		t.Fatalf("events = %+v", cp.Events)
	}
}

// A retried task contributes its successful (latest) execution to the path;
// the failed attempt's span never counts.
func TestCriticalPathUsesLatestAttempt(t *testing.T) {
	tr := New()
	tr.Record(Event{Kind: Task, Unit: "a", TaskID: 0, Start: 0, End: 1})
	tr.Record(Event{Kind: Failure, Unit: "b", TaskID: 1, ParentIDs: []int{0}, Start: 1, End: 9})
	tr.Record(Event{Kind: Task, Unit: "a", TaskID: 1, ParentIDs: []int{0}, Attempt: 1, Start: 2, End: 4})
	cp := tr.CriticalPath()
	if !reflect.DeepEqual(cp.TaskIDs, []int{0, 1}) {
		t.Fatalf("path = %v", cp.TaskIDs)
	}
	if cp.Length != 1+2 {
		t.Fatalf("length = %g; want 3 (failure span must not count)", cp.Length)
	}
	if cp.Events[1].Attempt != 1 {
		t.Fatalf("path picked attempt %d; want the retry", cp.Events[1].Attempt)
	}
}

// Parents that never produced a Task event (untraced, or only failed) are
// treated as roots rather than breaking extraction.
func TestCriticalPathUntracedParent(t *testing.T) {
	tr := New()
	tr.Record(Event{Kind: Task, Unit: "a", TaskID: 5, ParentIDs: []int{99}, Start: 0, End: 3})
	cp := tr.CriticalPath()
	if !reflect.DeepEqual(cp.TaskIDs, []int{5}) || cp.Length != 3 {
		t.Fatalf("path = %v length = %g", cp.TaskIDs, cp.Length)
	}
}

func TestCriticalPathEmpty(t *testing.T) {
	cp := New().CriticalPath()
	if cp.Length != 0 || cp.TaskIDs != nil || cp.Events != nil {
		t.Fatalf("empty path = %+v", cp)
	}
	// Unit-level events alone carry no task DAG.
	tr := New()
	tr.Record(Event{Kind: Blacklist, Unit: "a", TaskID: NoTask})
	if got := tr.CriticalPath(); len(got.TaskIDs) != 0 {
		t.Fatalf("path = %+v", got)
	}
}

// A (malformed) dependency cycle must not hang or crash extraction.
func TestCriticalPathCycleGuard(t *testing.T) {
	tr := New()
	tr.Record(Event{Kind: Task, Unit: "a", TaskID: 0, ParentIDs: []int{1}, Start: 0, End: 1})
	tr.Record(Event{Kind: Task, Unit: "a", TaskID: 1, ParentIDs: []int{0}, Start: 1, End: 2})
	cp := tr.CriticalPath()
	if len(cp.TaskIDs) == 0 || cp.Length <= 0 {
		t.Fatalf("cycle guard returned %+v", cp)
	}
}
