package trace

import (
	"sync"
	"testing"
)

// Drain must move everything recorded so far (direct records, flushed shard
// blocks, the dropped count) into the snapshot, keep metadata on both sides,
// and leave the receiver recording — the contract behind a collector
// repeatedly draining a live worker trace.
func TestDrainMovesEventsKeepsMeta(t *testing.T) {
	tr := New()
	tr.SetMeta(MetaNode, "w1")
	tr.SetMeta(MetaEpochMicros, "42")
	sh := tr.NewShard(0)
	sh.Record(Event{Kind: Task, Unit: "worker0", Start: 0, End: 1, TaskID: 0})
	sh.Flush()
	tr.Record(Event{Kind: Place, Unit: "m", Start: 0, End: 0, TaskID: 0})

	snap := tr.Drain()
	if snap.Len() != 2 {
		t.Fatalf("drained %d events; want 2", snap.Len())
	}
	if tr.Len() != 0 {
		t.Fatalf("receiver still holds %d events after Drain", tr.Len())
	}
	for _, m := range []*Trace{snap, tr} {
		meta := m.Meta()
		if meta[MetaNode] != "w1" || meta[MetaEpochMicros] != "42" {
			t.Fatalf("meta lost across Drain: %v", meta)
		}
	}

	// Second drain picks up only what was recorded since.
	tr.Record(Event{Kind: Task, Unit: "worker0", Start: 2, End: 3, TaskID: 1})
	snap2 := tr.Drain()
	if snap2.Len() != 1 {
		t.Fatalf("second drain got %d events; want 1", snap2.Len())
	}
	if got := snap2.Events()[0].TaskID; got != 1 {
		t.Fatalf("second drain returned task %d; want 1", got)
	}
}

// Drain racing concurrent recorders must never lose or double-count events
// (run under -race via the Makefile race subset).
func TestDrainConcurrentRecord(t *testing.T) {
	tr := New()
	const recorders, per = 4, 500
	var wg sync.WaitGroup
	for r := 0; r < recorders; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Record(Event{Kind: Task, TaskID: i})
			}
		}()
	}
	got := 0
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		got += tr.Drain().Len()
		select {
		case <-done:
			got += tr.Drain().Len()
			if got != recorders*per {
				t.Fatalf("drained %d events total; want %d", got, recorders*per)
			}
			return
		default:
		}
	}
}
