package trace

import (
	"sync"
	"testing"
)

// Drain must move everything recorded so far (direct records, flushed shard
// blocks, the dropped count) into the snapshot, keep metadata on both sides,
// and leave the receiver recording — the contract behind a collector
// repeatedly draining a live worker trace.
func TestDrainMovesEventsKeepsMeta(t *testing.T) {
	tr := New()
	tr.SetMeta(MetaNode, "w1")
	tr.SetMeta(MetaEpochMicros, "42")
	sh := tr.NewShard(0)
	sh.Record(Event{Kind: Task, Unit: "worker0", Start: 0, End: 1, TaskID: 0})
	sh.Flush()
	tr.Record(Event{Kind: Place, Unit: "m", Start: 0, End: 0, TaskID: 0})

	snap := tr.Drain()
	if snap.Len() != 2 {
		t.Fatalf("drained %d events; want 2", snap.Len())
	}
	if tr.Len() != 0 {
		t.Fatalf("receiver still holds %d events after Drain", tr.Len())
	}
	for _, m := range []*Trace{snap, tr} {
		meta := m.Meta()
		if meta[MetaNode] != "w1" || meta[MetaEpochMicros] != "42" {
			t.Fatalf("meta lost across Drain: %v", meta)
		}
	}

	// Second drain picks up only what was recorded since.
	tr.Record(Event{Kind: Task, Unit: "worker0", Start: 2, End: 3, TaskID: 1})
	snap2 := tr.Drain()
	if snap2.Len() != 1 {
		t.Fatalf("second drain got %d events; want 1", snap2.Len())
	}
	if got := snap2.Events()[0].TaskID; got != 1 {
		t.Fatalf("second drain returned task %d; want 1", got)
	}
}

// SetLimit must bound the trace between drains: oldest events (in the
// trace's iteration order — flushed blocks first, then direct records) are
// discarded past the cap, counted in Dropped (drain-scoped) and
// DroppedTotal (monotonic).
func TestSetLimitDropsOldest(t *testing.T) {
	tr := New()
	tr.SetLimit(5)
	for i := 0; i < 10; i++ {
		tr.Record(Event{Kind: Task, TaskID: i})
	}
	if got := tr.Len(); got != 5 {
		t.Fatalf("Len = %d with limit 5", got)
	}
	if d := tr.Dropped(); d != 5 {
		t.Fatalf("Dropped = %d, want 5", d)
	}
	events := tr.Events()
	if events[0].TaskID != 5 || events[4].TaskID != 9 {
		t.Fatalf("survivors are not the newest events: %+v", events)
	}

	// The worker pattern: every span arrives as a flushed shard block, and
	// whole blocks are dropped oldest-first.
	tr2 := New()
	tr2.SetLimit(6)
	for round := 0; round < 2; round++ {
		sh := tr2.NewShard(0)
		for i := 0; i < 4; i++ {
			sh.Record(Event{Kind: Task, TaskID: round*4 + i})
		}
		sh.Flush()
	}
	if got := tr2.Len(); got != 4 {
		t.Fatalf("Len = %d after block drop, want 4", got)
	}
	if got := tr2.Events()[0].TaskID; got != 4 {
		t.Fatalf("oldest surviving span is task %d, want 4", got)
	}
	if d := tr2.DroppedTotal(); d != 4 {
		t.Fatalf("DroppedTotal = %d, want 4", d)
	}

	// Drain resets the per-drain count but not the monotonic one, and the
	// receiver keeps enforcing its limit afterwards.
	snap := tr2.Drain()
	if snap.Dropped() != 4 || tr2.Dropped() != 0 {
		t.Fatalf("drain moved dropped wrong: snap=%d recv=%d", snap.Dropped(), tr2.Dropped())
	}
	if d := tr2.DroppedTotal(); d != 4 {
		t.Fatalf("DroppedTotal reset by Drain: %d", d)
	}
	for i := 0; i < 10; i++ {
		tr2.Record(Event{Kind: Task, TaskID: 100 + i})
	}
	if got, d := tr2.Len(), tr2.DroppedTotal(); got != 6 || d != 8 {
		t.Fatalf("post-drain enforcement: Len=%d DroppedTotal=%d, want 6 and 8", got, d)
	}

	// SetLimit(0) removes the bound.
	tr2.SetLimit(0)
	for i := 0; i < 20; i++ {
		tr2.Record(Event{Kind: Task, TaskID: 200 + i})
	}
	if got := tr2.Len(); got != 26 {
		t.Fatalf("unbounded trace Len = %d, want 26", got)
	}
}

// Drain racing concurrent recorders must never lose or double-count events
// (run under -race via the Makefile race subset).
func TestDrainConcurrentRecord(t *testing.T) {
	tr := New()
	const recorders, per = 4, 500
	var wg sync.WaitGroup
	for r := 0; r < recorders; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Record(Event{Kind: Task, TaskID: i})
			}
		}()
	}
	got := 0
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		got += tr.Drain().Len()
		select {
		case <-done:
			got += tr.Drain().Len()
			if got != recorders*per {
				t.Fatalf("drained %d events total; want %d", got, recorders*per)
			}
			return
		default:
		}
	}
}
