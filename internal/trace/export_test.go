package trace

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// richSample builds a trace exercising every event kind and causal field.
// All times are chosen so the seconds→microseconds→seconds round trip is
// exact in float64.
func richSample() *Trace {
	t := New()
	t.SetMeta("scheduler", "ws")
	t.SetMeta("mode", "real")
	t.Record(Event{Kind: Task, Unit: "worker0", Label: "root", Start: 0, End: 1, TaskID: 0})
	t.Record(Event{Kind: Transfer, Unit: "node1", Label: "A", Start: 0.5, End: 0.75, Bytes: 4096, TaskID: 1, Worker: 1, From: "node0"})
	t.Record(Event{Kind: Steal, Unit: "worker1", Start: 1, End: 1, TaskID: 1, Worker: 1, From: "worker0"})
	t.Record(Event{Kind: Task, Unit: "worker1", Label: "left", Start: 1, End: 2.25, TaskID: 1, ParentIDs: []int{0}, Worker: 1})
	t.Record(Event{Kind: Failure, Unit: "worker0", Label: "right", Start: 1, End: 1.5, TaskID: 2, ParentIDs: []int{0}})
	t.Record(Event{Kind: Blacklist, Unit: "worker0", Start: 1.5, End: 1.5, TaskID: NoTask})
	t.Record(Event{Kind: Retry, Unit: "worker0", Label: "right", Start: 1.5, End: 1.75, TaskID: 2, Attempt: 1})
	t.Record(Event{Kind: Task, Unit: "worker1", Label: "right", Start: 2.25, End: 3, TaskID: 2, ParentIDs: []int{0}, Attempt: 1, Worker: 1})
	t.Record(Event{Kind: Recover, Unit: "worker0", Start: 2, End: 2, TaskID: NoTask})
	t.Record(Event{Kind: Task, Unit: "worker1", Label: "join", Start: 3, End: 3.5, TaskID: 3, ParentIDs: []int{1, 2}, Worker: 1})
	return t
}

// sameTrace asserts two traces carry identical events and metadata.
func sameTrace(t *testing.T, want, got *Trace) {
	t.Helper()
	we, ge := want.Events(), got.Events()
	if len(we) != len(ge) {
		t.Fatalf("event count = %d; want %d", len(ge), len(we))
	}
	for i := range we {
		if !reflect.DeepEqual(we[i], ge[i]) {
			t.Fatalf("event %d:\n got %+v\nwant %+v", i, ge[i], we[i])
		}
	}
	if !reflect.DeepEqual(want.Meta(), got.Meta()) {
		t.Fatalf("meta = %v; want %v", got.Meta(), want.Meta())
	}
}

// The Chrome exporter's output is deterministic, so it is pinned to a golden
// file (refresh with go test ./internal/trace -run Golden -update).
func TestChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := richSample().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome output drifted from %s (re-run with -update if intended):\n%s", golden, buf.String())
	}
}

// The Chrome file carries full span identity in args, so importing it back
// must reproduce the original trace exactly — including flow-event sources
// being skipped rather than misread as spans.
func TestChromeRoundTrip(t *testing.T) {
	tr := richSample()
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadChrome(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sameTrace(t, tr, got)
}

func TestChromeFlowEvents(t *testing.T) {
	var buf bytes.Buffer
	if err := richSample().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Dependency arrows: join has two parents, left/right one each → 4 flow
	// pairs; the steal adds one more.
	if n := strings.Count(out, `"name": "dep"`); n != 8 {
		t.Fatalf("dep flow events = %d; want 8 (4 s/f pairs)", n)
	}
	if n := strings.Count(out, `"name": "steal"`); n != 3 {
		// One instant event plus the s/f arrow pair.
		t.Fatalf("steal events = %d; want 3", n)
	}
	for _, want := range []string{`"name": "process_name"`, `"name": "thread_name"`, `"name": "thread_sort_index"`, `"displayTimeUnit": "ms"`, `"scheduler": "ws"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("chrome output lacks %s", want)
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := richSample()
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	// Header first, one event per line.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+tr.Len() {
		t.Fatalf("lines = %d; want %d", len(lines), 1+tr.Len())
	}
	if !strings.Contains(lines[0], `"format":"pdltrace"`) {
		t.Fatalf("header = %s", lines[0])
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sameTrace(t, tr, got)
}

// ReadBytes sniffs the format, so both exporters feed the same readers
// (pdltrace convert, pdlserved -trace).
func TestReadBytesSniffsBothFormats(t *testing.T) {
	tr := richSample()
	var chrome, jsonl bytes.Buffer
	if err := tr.WriteChrome(&chrome); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string][]byte{"chrome": chrome.Bytes(), "jsonl": jsonl.Bytes()} {
		got, err := ReadBytes(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sameTrace(t, tr, got)
	}
}

func TestReadBytesRejectsGarbage(t *testing.T) {
	for _, data := range []string{"", "not json", `{"some":"object"}`, `{"format":"other","version":1}`} {
		if _, err := ReadBytes([]byte(data)); err == nil {
			t.Fatalf("ReadBytes(%q) accepted garbage", data)
		}
	}
}

func TestReadFileRoundTrip(t *testing.T) {
	tr := richSample()
	dir := t.TempDir()
	chrome := filepath.Join(dir, "t.json")
	jsonl := filepath.Join(dir, "t.jsonl")
	if err := tr.WriteChromeFile(chrome); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSONLFile(jsonl); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{chrome, jsonl} {
		got, err := ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		sameTrace(t, tr, got)
	}
}

func TestPublish(t *testing.T) {
	prev := Published()
	defer Publish(prev)
	tr := richSample()
	Publish(tr)
	if Published() != tr {
		t.Fatal("Published did not return the published trace")
	}
}

// Place events carry the modelled transfer charge of the placement decision;
// the Chrome serialisation must round-trip it (and omit it when zero).
func TestChromePlaceTransferRoundTrip(t *testing.T) {
	tr := New()
	tr.SetMeta("scheduler", "dmda")
	tr.Record(Event{Kind: Place, Unit: "worker1", Label: "gemm", Start: 1, End: 1,
		TaskID: 4, Worker: 1, From: "model", Transfer: 0.25})
	tr.Record(Event{Kind: Place, Unit: "worker0", Label: "gemm", Start: 2, End: 2,
		TaskID: 5, From: "model"})
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"transfer": 0.25`) {
		t.Fatal("chrome output lacks the transfer arg")
	}
	got, err := ReadChrome(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sameTrace(t, tr, got)
}
