package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// JSONL stream format: line 1 is a header object naming the format and
// carrying trace metadata, every following line is one Event. The format is
// append-friendly (a crashed run keeps every line written so far) and
// streams through standard line tooling, while WriteChrome targets the
// Perfetto UI.

// jsonlHeader is the first line of a JSONL trace.
type jsonlHeader struct {
	Format  string            `json:"format"` // "pdltrace"
	Version int               `json:"version"`
	Events  int               `json:"events"`
	Dropped uint64            `json:"dropped,omitempty"`
	Meta    map[string]string `json:"meta,omitempty"`
}

const jsonlFormat = "pdltrace"

// WriteJSONL writes the trace as a JSONL stream: header line, then one
// event per line in deterministic (start, unit, label) order.
func (t *Trace) WriteJSONL(w io.Writer) error {
	events := t.Events()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(jsonlHeader{
		Format:  jsonlFormat,
		Version: 1,
		Events:  len(events),
		Dropped: t.Dropped(),
		Meta:    t.Meta(),
	}); err != nil {
		return err
	}
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteJSONLFile writes the JSONL stream to a file.
func (t *Trace) WriteJSONLFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadJSONL reconstructs a Trace from a JSONL stream.
func ReadJSONL(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("trace: empty JSONL trace")
	}
	var hdr jsonlHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("trace: decoding JSONL header: %w", err)
	}
	if hdr.Format != jsonlFormat {
		return nil, fmt.Errorf("trace: not a pdltrace JSONL stream (format %q)", hdr.Format)
	}
	t := New()
	for k, v := range hdr.Meta {
		t.SetMeta(k, v)
	}
	line := 1
	for sc.Scan() {
		line++
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("trace: JSONL line %d: %w", line, err)
		}
		t.Record(e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// ReadBytes parses a serialised trace in either supported format, sniffing
// the header: a Chrome trace is one JSON object with a traceEvents key, a
// JSONL stream starts with the pdltrace header line.
func ReadBytes(data []byte) (*Trace, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if nl := bytes.IndexByte(trimmed, '\n'); nl >= 0 {
		var hdr jsonlHeader
		if json.Unmarshal(trimmed[:nl], &hdr) == nil && hdr.Format == jsonlFormat {
			return ReadJSONL(bytes.NewReader(trimmed))
		}
	} else {
		// A single line can still be a (header-only) JSONL trace.
		var hdr jsonlHeader
		if json.Unmarshal(trimmed, &hdr) == nil && hdr.Format == jsonlFormat {
			return ReadJSONL(bytes.NewReader(trimmed))
		}
	}
	var file chromeFile
	if err := json.Unmarshal(trimmed, &file); err == nil && file.TraceEvents != nil {
		return fromChrome(&file)
	}
	return nil, fmt.Errorf("trace: unrecognised trace format (want Chrome trace_event JSON or pdltrace JSONL)")
}

// ReadFile parses a trace file in either supported format.
func ReadFile(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	t, err := ReadBytes(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}
