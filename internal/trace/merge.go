package trace

import (
	"fmt"
	"sort"
	"strconv"
)

// Meta keys stamped by cluster processes so per-node traces can be merged
// into one cluster-wide timeline. MetaNode names the node that produced the
// trace; MetaEpochMicros is the node's trace time origin as Unix microseconds
// (the wall-clock instant that corresponds to trace time 0), letting Merge
// align the independent time bases of separate processes.
const (
	MetaNode        = "node"
	MetaEpochMicros = "epoch_us"
)

// Merge combines per-node traces into one cluster-wide trace.
//
// Each input's events are stamped with the node name taken from its
// MetaNode metadata (events already carrying a Node keep it — the master's
// trace records dispatch spans against the target node). When every input
// carries MetaEpochMicros, event times are shifted onto a common time base
// anchored at the earliest epoch; otherwise the inputs' own time bases are
// kept as-is (useful for synthetic traces in tests).
//
// Metadata merges with a "node/" prefix per input (e.g. "w1/epoch_us"),
// keeping node-specific keys apart; unprefixed keys from the first input
// win for everything else.
func Merge(inputs ...*Trace) (*Trace, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("trace: merge of zero traces")
	}

	type part struct {
		tr    *Trace
		node  string
		epoch int64
	}
	parts := make([]part, 0, len(inputs))
	haveEpochs := true
	var minEpoch int64
	epochSeen := false
	for i, tr := range inputs {
		if tr == nil {
			return nil, fmt.Errorf("trace: merge input %d is nil", i)
		}
		meta := tr.Meta()
		p := part{tr: tr, node: meta[MetaNode]}
		if p.node == "" {
			p.node = fmt.Sprintf("n%d", i)
		}
		if s := meta[MetaEpochMicros]; s != "" {
			us, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: merge input %d (%s): bad %s %q: %v", i, p.node, MetaEpochMicros, s, err)
			}
			p.epoch = us
			if !epochSeen || us < minEpoch {
				minEpoch = us
			}
			epochSeen = true
		} else {
			// An input without an epoch disables time alignment entirely:
			// shifting only some inputs would skew their relative order.
			haveEpochs = false
		}
		parts = append(parts, p)
	}

	out := New()
	var merged []Event
	for _, p := range parts {
		shift := 0.0
		if haveEpochs {
			shift = float64(p.epoch-minEpoch) / 1e6
		}
		for _, e := range p.tr.Events() {
			if e.Node == "" {
				e.Node = p.node
			}
			e.Start += shift
			e.End += shift
			merged = append(merged, e)
		}
		for k, v := range p.tr.Meta() {
			out.SetMeta(p.node+"/"+k, v)
		}
	}
	// First input's unprefixed metadata wins for trace-level keys.
	for k, v := range parts[0].tr.Meta() {
		if k != MetaNode && k != MetaEpochMicros {
			out.SetMeta(k, v)
		}
	}
	sort.Slice(merged, func(i, j int) bool {
		a, b := merged[i], merged[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Unit != b.Unit {
			return a.Unit < b.Unit
		}
		return a.TaskID < b.TaskID
	})
	for _, e := range merged {
		out.Record(e)
	}
	return out, nil
}
