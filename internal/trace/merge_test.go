package trace

import (
	"bytes"
	"strings"
	"testing"
)

// nodeSample builds a trace as a pdlworkerd process would: node + epoch
// metadata, events without explicit Node stamps.
func nodeSample(node string, epochUS int64) *Trace {
	t := New()
	t.SetMeta(MetaNode, node)
	t.SetMeta(MetaEpochMicros, itoa64(epochUS))
	t.Record(Event{Kind: Task, Unit: "worker0", Label: "gemm", Start: 0, End: 1, TaskID: 0})
	t.Record(Event{Kind: Task, Unit: "worker1", Label: "gemm", Start: 0.5, End: 2, TaskID: 1})
	return t
}

func itoa64(v int64) string {
	var buf [20]byte
	i := len(buf)
	neg := v < 0
	if neg {
		v = -v
	}
	for {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// The Node dimension must survive both serialisations: JSONL via struct
// tags, Chrome via args plus per-node process lanes.
func TestNodeRoundTrip(t *testing.T) {
	tr := New()
	tr.SetMeta("scheduler", "cluster")
	tr.Record(Event{Kind: Task, Unit: "worker0", Label: "a", Start: 0, End: 1, TaskID: 0, Node: "w1"})
	tr.Record(Event{Kind: Task, Unit: "worker0", Label: "b", Start: 1, End: 2, TaskID: 1, ParentIDs: []int{0}, Node: "w2"})
	tr.Record(Event{Kind: Place, Unit: "master", Label: "b", Start: 0.5, End: 0.5, TaskID: 1, From: "model"})

	var jsonl, chrome bytes.Buffer
	if err := tr.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&jsonl)
	if err != nil {
		t.Fatal(err)
	}
	sameTrace(t, tr, got)

	if err := tr.WriteChrome(&chrome); err != nil {
		t.Fatal(err)
	}
	out := chrome.String()
	// Distinct nodes become distinct processes; node-less events keep pid 0.
	for _, want := range []string{`"name": "node:w1"`, `"name": "node:w2"`, `"name": "pdl"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("chrome output lacks %s:\n%s", want, out)
		}
	}
	got, err = ReadChrome(bytes.NewReader(chrome.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	sameTrace(t, tr, got)
}

// Merge stamps each input's node onto its events and aligns time bases via
// the epoch metadata: a worker whose epoch is 1.5s later must have its spans
// shifted 1.5s right in the merged timeline.
func TestMergeAlignsEpochs(t *testing.T) {
	a := nodeSample("w1", 1_000_000)
	b := nodeSample("w2", 2_500_000)
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	events := m.Events()
	if len(events) != 4 {
		t.Fatalf("merged %d events; want 4", len(events))
	}
	var w1Start, w2Start float64 = -1, -1
	for _, e := range events {
		switch {
		case e.Node == "w1" && e.TaskID == 0:
			w1Start = e.Start
		case e.Node == "w2" && e.TaskID == 0:
			w2Start = e.Start
		}
	}
	if w1Start != 0 {
		t.Fatalf("w1 task0 start = %v; want 0 (earliest epoch is the origin)", w1Start)
	}
	if w2Start != 1.5 {
		t.Fatalf("w2 task0 start = %v; want 1.5 (epoch delta)", w2Start)
	}
	// Per-node metadata is preserved under prefixed keys.
	meta := m.Meta()
	if meta["w1/"+MetaEpochMicros] != "1000000" || meta["w2/"+MetaEpochMicros] != "2500000" {
		t.Fatalf("merged meta missing per-node epochs: %v", meta)
	}
}

// Deliberate clock skew: nodes whose wall clocks disagree (one 3s behind the
// master, one 5s ahead) must still land on one consistent timeline, because
// alignment uses only the epoch deltas — the skew cancels as long as each
// node's events are offsets from its own epoch. Durations must be preserved
// exactly; only origins shift.
func TestMergeUnderClockSkew(t *testing.T) {
	const base = int64(1_700_000_000_000_000) // some wall-clock epoch, µs
	master := nodeSample("m", base)
	behind := nodeSample("slow-clock", base-3_000_000) // clock 3s behind
	ahead := nodeSample("fast-clock", base+5_000_000)  // clock 5s ahead
	m, err := Merge(master, behind, ahead)
	if err != nil {
		t.Fatal(err)
	}
	// Earliest epoch (behind's) becomes the origin; everyone else shifts
	// right by their delta to it.
	wantShift := map[string]float64{"slow-clock": 0, "m": 3, "fast-clock": 8}
	seen := map[string]bool{}
	for _, e := range m.Events() {
		if e.TaskID != 0 {
			continue
		}
		want, ok := wantShift[e.Node]
		if !ok {
			t.Fatalf("unexpected node %q", e.Node)
		}
		seen[e.Node] = true
		if e.Start != want {
			t.Fatalf("node %s task0 start = %v; want %v", e.Node, e.Start, want)
		}
		if d := e.Duration(); d != 1 {
			t.Fatalf("node %s task0 duration = %v; want 1 (skew must not stretch spans)", e.Node, d)
		}
	}
	if len(seen) != 3 {
		t.Fatalf("merged trace covers nodes %v; want all 3", seen)
	}
	// Makespan spans from the earliest node's first event to the latest
	// node's last (local end 2 + shift 8).
	if ms := m.Makespan(); ms != 10 {
		t.Fatalf("merged makespan = %v; want 10", ms)
	}
}

// Without epochs on every input, Merge must not shift anything — partial
// alignment would reorder events across nodes arbitrarily.
func TestMergeWithoutEpochsKeepsTimes(t *testing.T) {
	a := New()
	a.SetMeta(MetaNode, "w1")
	a.Record(Event{Kind: Task, Unit: "u", Start: 1, End: 2, TaskID: 0})
	b := nodeSample("w2", 9_000_000)
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range m.Events() {
		if e.Node == "w1" && e.TaskID == 0 && e.Start != 1 {
			t.Fatalf("w1 start shifted to %v without full epoch info", e.Start)
		}
		if e.Node == "w2" && e.TaskID == 0 && e.Start != 0 {
			t.Fatalf("w2 start shifted to %v without full epoch info", e.Start)
		}
	}
}

// Events that already carry a Node (the master's dispatch spans name the
// target node) keep it; only unstamped events inherit the trace's node.
func TestMergeKeepsExplicitNode(t *testing.T) {
	a := New()
	a.SetMeta(MetaNode, "master")
	a.Record(Event{Kind: Place, Unit: "m", Start: 0, End: 0, TaskID: 0, Node: "w2"})
	a.Record(Event{Kind: Task, Unit: "m", Start: 0, End: 1, TaskID: 1})
	m, err := Merge(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range m.Events() {
		switch e.TaskID {
		case 0:
			if e.Node != "w2" {
				t.Fatalf("explicit node overwritten: %q", e.Node)
			}
		case 1:
			if e.Node != "master" {
				t.Fatalf("unstamped event node = %q; want master", e.Node)
			}
		}
	}
}

// A worker crash mid-run produces the hardest merge input: the node's trace
// arrives in two pieces with different epochs (the restart re-registers with
// a fresh time origin), the crashed attempt left a Failure event, the retry
// ran in the second incarnation, and a speculative duplicate of another task
// ran elsewhere. The merged timeline must stay causally ordered across the
// epoch boundary, and CriticalPath must chain through the surviving attempt
// of every task — never a Failure, never a superseded duplicate.
func TestMergeMultiEpochMultiAttempt(t *testing.T) {
	const base = int64(1_000_000)

	// The master places all three tasks; its dispatch spans carry explicit
	// target nodes and must never reach the critical path.
	master := New()
	master.SetMeta(MetaNode, "master")
	master.SetMeta(MetaEpochMicros, itoa64(base))
	master.Record(Event{Kind: Place, Unit: "m", Start: 0, End: 0, TaskID: 0, Node: "w1"})
	master.Record(Event{Kind: Place, Unit: "m", Start: 0, End: 0, TaskID: 1, Node: "w1"})
	master.Record(Event{Kind: Place, Unit: "m", Start: 0.1, End: 0.1, TaskID: 2, Node: "w2"})

	// w1, first incarnation: runs task 0, fails task 1, crashes.
	w1a := New()
	w1a.SetMeta(MetaNode, "w1")
	w1a.SetMeta(MetaEpochMicros, itoa64(base))
	w1a.Record(Event{Kind: Task, Unit: "slot0", Label: "potrf", Start: 0, End: 1, TaskID: 0})
	w1a.Record(Event{Kind: Failure, Unit: "slot0", Label: "trsm", Start: 1.0, End: 1.4, TaskID: 1, ParentIDs: []int{0}})

	// w1, second incarnation: restarts 2s later (fresh epoch), retries
	// task 1. Its local clock restarted from zero — only the new epoch
	// places the retry after the failure on the merged timeline.
	w1b := New()
	w1b.SetMeta(MetaNode, "w1")
	w1b.SetMeta(MetaEpochMicros, itoa64(base+2_000_000))
	w1b.Record(Event{Kind: Task, Unit: "slot0", Label: "trsm", Start: 0.5, End: 1.5, TaskID: 1, ParentIDs: []int{0}})

	// w2: ran a speculative duplicate of task 0 that lost (earlier global
	// End than w1's run), then task 2 once task 1's retry landed.
	w2 := New()
	w2.SetMeta(MetaNode, "w2")
	w2.SetMeta(MetaEpochMicros, itoa64(base+500_000))
	w2.Record(Event{Kind: Task, Unit: "slot0", Label: "potrf", Start: 0, End: 0.2, TaskID: 0})
	w2.Record(Event{Kind: Task, Unit: "slot0", Label: "syrk", Start: 3.2, End: 4.4, TaskID: 2, ParentIDs: []int{1}})

	m, err := Merge(master, w1a, w1b, w2)
	if err != nil {
		t.Fatal(err)
	}

	// The merged timeline is globally sorted and causally ordered: each
	// task's surviving attempt starts at or after every parent's surviving
	// end, even across w1's epoch boundary.
	events := m.Events()
	surviving := map[int]Event{}
	for i, e := range events {
		if i > 0 && e.Start < events[i-1].Start {
			t.Fatalf("merged events out of order at %d: %v after %v", i, e.Start, events[i-1].Start)
		}
		if e.Kind != Task {
			continue
		}
		if prev, ok := surviving[e.TaskID]; !ok || e.End > prev.End {
			surviving[e.TaskID] = e
		}
	}
	for id, e := range surviving {
		for _, p := range e.ParentIDs {
			if pe, ok := surviving[p]; ok && e.Start < pe.End {
				t.Fatalf("task %d starts at %v before parent %d ends at %v", id, e.Start, p, pe.End)
			}
		}
	}
	// The retry landed after the failure it supersedes.
	if got := surviving[1].Start; got != 2.5 {
		t.Fatalf("task 1 retry starts at %v; want 2.5 (0.5 local + 2s epoch delta)", got)
	}

	cp := m.CriticalPath()
	if len(cp.TaskIDs) != 3 || cp.TaskIDs[0] != 0 || cp.TaskIDs[1] != 1 || cp.TaskIDs[2] != 2 {
		t.Fatalf("critical path task ids = %v; want [0 1 2]", cp.TaskIDs)
	}
	// Surviving durations: task 0 on w1 (1s, the duplicate on w2 lost),
	// task 1's retry (1s), task 2 (1.2s).
	if want := 1 + 1 + 1.2; cp.Length < want-1e-9 || cp.Length > want+1e-9 {
		t.Fatalf("critical path length = %v; want %v", cp.Length, want)
	}
	if e := cp.Events[0]; e.Node != "w1" || e.End != 1 {
		t.Fatalf("path uses the losing duplicate of task 0: %+v", e)
	}
	if e := cp.Events[1]; e.Node != "w1" || e.Start != 2.5 || e.Kind != Task {
		t.Fatalf("path does not use the surviving retry of task 1: %+v", e)
	}
	if e := cp.Events[2]; e.Node != "w2" {
		t.Fatalf("task 2 attributed to %q; want w2", e.Node)
	}
	// Both incarnations' epochs survive under the node-prefixed meta (the
	// later registration wins the key, matching registry semantics).
	if got := m.Meta()["w1/"+MetaEpochMicros]; got != itoa64(base+2_000_000) {
		t.Fatalf("w1 merged epoch = %q; want the restart's", got)
	}
}

func TestMergeErrors(t *testing.T) {
	if _, err := Merge(); err == nil {
		t.Fatal("Merge() of nothing succeeded")
	}
	if _, err := Merge(nil); err == nil {
		t.Fatal("Merge(nil) succeeded")
	}
	bad := New()
	bad.SetMeta(MetaEpochMicros, "not-a-number")
	if _, err := Merge(bad); err == nil {
		t.Fatal("Merge with bad epoch succeeded")
	}
}
