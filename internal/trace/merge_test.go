package trace

import (
	"bytes"
	"strings"
	"testing"
)

// nodeSample builds a trace as a pdlworkerd process would: node + epoch
// metadata, events without explicit Node stamps.
func nodeSample(node string, epochUS int64) *Trace {
	t := New()
	t.SetMeta(MetaNode, node)
	t.SetMeta(MetaEpochMicros, itoa64(epochUS))
	t.Record(Event{Kind: Task, Unit: "worker0", Label: "gemm", Start: 0, End: 1, TaskID: 0})
	t.Record(Event{Kind: Task, Unit: "worker1", Label: "gemm", Start: 0.5, End: 2, TaskID: 1})
	return t
}

func itoa64(v int64) string {
	var buf [20]byte
	i := len(buf)
	neg := v < 0
	if neg {
		v = -v
	}
	for {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// The Node dimension must survive both serialisations: JSONL via struct
// tags, Chrome via args plus per-node process lanes.
func TestNodeRoundTrip(t *testing.T) {
	tr := New()
	tr.SetMeta("scheduler", "cluster")
	tr.Record(Event{Kind: Task, Unit: "worker0", Label: "a", Start: 0, End: 1, TaskID: 0, Node: "w1"})
	tr.Record(Event{Kind: Task, Unit: "worker0", Label: "b", Start: 1, End: 2, TaskID: 1, ParentIDs: []int{0}, Node: "w2"})
	tr.Record(Event{Kind: Place, Unit: "master", Label: "b", Start: 0.5, End: 0.5, TaskID: 1, From: "model"})

	var jsonl, chrome bytes.Buffer
	if err := tr.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&jsonl)
	if err != nil {
		t.Fatal(err)
	}
	sameTrace(t, tr, got)

	if err := tr.WriteChrome(&chrome); err != nil {
		t.Fatal(err)
	}
	out := chrome.String()
	// Distinct nodes become distinct processes; node-less events keep pid 0.
	for _, want := range []string{`"name": "node:w1"`, `"name": "node:w2"`, `"name": "pdl"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("chrome output lacks %s:\n%s", want, out)
		}
	}
	got, err = ReadChrome(bytes.NewReader(chrome.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	sameTrace(t, tr, got)
}

// Merge stamps each input's node onto its events and aligns time bases via
// the epoch metadata: a worker whose epoch is 1.5s later must have its spans
// shifted 1.5s right in the merged timeline.
func TestMergeAlignsEpochs(t *testing.T) {
	a := nodeSample("w1", 1_000_000)
	b := nodeSample("w2", 2_500_000)
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	events := m.Events()
	if len(events) != 4 {
		t.Fatalf("merged %d events; want 4", len(events))
	}
	var w1Start, w2Start float64 = -1, -1
	for _, e := range events {
		switch {
		case e.Node == "w1" && e.TaskID == 0:
			w1Start = e.Start
		case e.Node == "w2" && e.TaskID == 0:
			w2Start = e.Start
		}
	}
	if w1Start != 0 {
		t.Fatalf("w1 task0 start = %v; want 0 (earliest epoch is the origin)", w1Start)
	}
	if w2Start != 1.5 {
		t.Fatalf("w2 task0 start = %v; want 1.5 (epoch delta)", w2Start)
	}
	// Per-node metadata is preserved under prefixed keys.
	meta := m.Meta()
	if meta["w1/"+MetaEpochMicros] != "1000000" || meta["w2/"+MetaEpochMicros] != "2500000" {
		t.Fatalf("merged meta missing per-node epochs: %v", meta)
	}
}

// Deliberate clock skew: nodes whose wall clocks disagree (one 3s behind the
// master, one 5s ahead) must still land on one consistent timeline, because
// alignment uses only the epoch deltas — the skew cancels as long as each
// node's events are offsets from its own epoch. Durations must be preserved
// exactly; only origins shift.
func TestMergeUnderClockSkew(t *testing.T) {
	const base = int64(1_700_000_000_000_000) // some wall-clock epoch, µs
	master := nodeSample("m", base)
	behind := nodeSample("slow-clock", base-3_000_000) // clock 3s behind
	ahead := nodeSample("fast-clock", base+5_000_000)  // clock 5s ahead
	m, err := Merge(master, behind, ahead)
	if err != nil {
		t.Fatal(err)
	}
	// Earliest epoch (behind's) becomes the origin; everyone else shifts
	// right by their delta to it.
	wantShift := map[string]float64{"slow-clock": 0, "m": 3, "fast-clock": 8}
	seen := map[string]bool{}
	for _, e := range m.Events() {
		if e.TaskID != 0 {
			continue
		}
		want, ok := wantShift[e.Node]
		if !ok {
			t.Fatalf("unexpected node %q", e.Node)
		}
		seen[e.Node] = true
		if e.Start != want {
			t.Fatalf("node %s task0 start = %v; want %v", e.Node, e.Start, want)
		}
		if d := e.Duration(); d != 1 {
			t.Fatalf("node %s task0 duration = %v; want 1 (skew must not stretch spans)", e.Node, d)
		}
	}
	if len(seen) != 3 {
		t.Fatalf("merged trace covers nodes %v; want all 3", seen)
	}
	// Makespan spans from the earliest node's first event to the latest
	// node's last (local end 2 + shift 8).
	if ms := m.Makespan(); ms != 10 {
		t.Fatalf("merged makespan = %v; want 10", ms)
	}
}

// Without epochs on every input, Merge must not shift anything — partial
// alignment would reorder events across nodes arbitrarily.
func TestMergeWithoutEpochsKeepsTimes(t *testing.T) {
	a := New()
	a.SetMeta(MetaNode, "w1")
	a.Record(Event{Kind: Task, Unit: "u", Start: 1, End: 2, TaskID: 0})
	b := nodeSample("w2", 9_000_000)
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range m.Events() {
		if e.Node == "w1" && e.TaskID == 0 && e.Start != 1 {
			t.Fatalf("w1 start shifted to %v without full epoch info", e.Start)
		}
		if e.Node == "w2" && e.TaskID == 0 && e.Start != 0 {
			t.Fatalf("w2 start shifted to %v without full epoch info", e.Start)
		}
	}
}

// Events that already carry a Node (the master's dispatch spans name the
// target node) keep it; only unstamped events inherit the trace's node.
func TestMergeKeepsExplicitNode(t *testing.T) {
	a := New()
	a.SetMeta(MetaNode, "master")
	a.Record(Event{Kind: Place, Unit: "m", Start: 0, End: 0, TaskID: 0, Node: "w2"})
	a.Record(Event{Kind: Task, Unit: "m", Start: 0, End: 1, TaskID: 1})
	m, err := Merge(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range m.Events() {
		switch e.TaskID {
		case 0:
			if e.Node != "w2" {
				t.Fatalf("explicit node overwritten: %q", e.Node)
			}
		case 1:
			if e.Node != "master" {
				t.Fatalf("unstamped event node = %q; want master", e.Node)
			}
		}
	}
}

func TestMergeErrors(t *testing.T) {
	if _, err := Merge(); err == nil {
		t.Fatal("Merge() of nothing succeeded")
	}
	if _, err := Merge(nil); err == nil {
		t.Fatal("Merge(nil) succeeded")
	}
	bad := New()
	bad.SetMeta(MetaEpochMicros, "not-a-number")
	if _, err := Merge(bad); err == nil {
		t.Fatal("Merge with bad epoch succeeded")
	}
}
