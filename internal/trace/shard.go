package trace

// DefaultShardCapacity bounds a shard's buffer when NewShard is called with
// capacity <= 0: 64k events (~8 MB) per worker before the oldest events
// start being discarded.
const DefaultShardCapacity = 1 << 16

// shardChunk is the allocation unit of a shard. Chunks are sealed when full
// and handed to the parent Trace at Flush by ownership transfer — never
// copied — so the recording path's total allocation is exactly the events
// recorded: no doubling-growth copies, no merge copy, no GC churn beyond
// the data itself.
const shardChunk = 1024

// Shard is a single-producer event buffer owned by one worker goroutine.
// Record is lock-free (an append into the active chunk), so tracing never
// contends on the Trace mutex inside the work-stealing hot path. The owner
// calls Flush — typically once, at worker shutdown — to merge the buffered
// events into the parent Trace in recording order.
//
// A Shard must not be shared between goroutines: one worker records, the
// same worker (or the run's join point, after the worker exited) flushes.
type Shard struct {
	parent   *Trace
	limit    int
	chunks   [][]Event // sealed chunks, oldest first
	cur      []Event   // active chunk, appended in place
	buffered int       // events held in sealed chunks (excludes cur)
	dropped  uint64
}

// NewShard creates a per-worker recording buffer holding up to capacity
// events (DefaultShardCapacity when <= 0). Memory is allocated chunk by
// chunk as events arrive — idle workers never allocate — and past the
// capacity the oldest chunks are discarded whole, a bounded-memory
// guarantee for pathological runs.
func (t *Trace) NewShard(capacity int) *Shard {
	if capacity <= 0 {
		capacity = DefaultShardCapacity
	}
	return &Shard{parent: t, limit: capacity}
}

// Record buffers an event. Owner goroutine only; never blocks, never locks,
// never copies previously recorded events. Once the buffered total would
// exceed the shard's capacity, the oldest sealed chunks are dropped (in
// chunk granularity) and counted as dropped.
func (s *Shard) Record(e Event) {
	if len(s.cur) == cap(s.cur) {
		if s.cur != nil {
			s.chunks = append(s.chunks, s.cur)
			s.buffered += len(s.cur)
		}
		n := shardChunk
		if n > s.limit {
			n = s.limit
		}
		for s.buffered+n > s.limit && len(s.chunks) > 0 {
			s.dropped += uint64(len(s.chunks[0]))
			s.buffered -= len(s.chunks[0])
			s.chunks[0] = nil
			s.chunks = s.chunks[1:]
		}
		s.cur = make([]Event, 0, n)
	}
	s.cur = append(s.cur, e)
}

// Len returns the number of buffered (unflushed) events.
func (s *Shard) Len() int { return s.buffered + len(s.cur) }

// Dropped reports how many events this shard discarded before Flush.
func (s *Shard) Dropped() uint64 { return s.dropped }

// Flush hands the buffered chunks to the parent trace in recording order
// and resets the shard for reuse. Ownership transfers — no event is copied
// — so merging a worker's whole history is O(chunks), not O(events).
func (s *Shard) Flush() {
	if s.Len() == 0 && s.dropped == 0 {
		return
	}
	s.parent.mu.Lock()
	s.parent.blocks = append(s.parent.blocks, s.chunks...)
	if len(s.cur) > 0 {
		s.parent.blocks = append(s.parent.blocks, s.cur)
	}
	s.parent.dropped += s.dropped
	s.parent.droppedTotal += s.dropped
	s.parent.enforceLimitLocked()
	s.parent.mu.Unlock()
	s.chunks, s.cur, s.buffered, s.dropped = nil, nil, 0, 0
}
