package trace

import (
	"sync"
	"testing"
)

func TestShardFlushPreservesOrder(t *testing.T) {
	tr := New()
	sh := tr.NewShard(8)
	for i := 0; i < 5; i++ {
		sh.Record(Event{Kind: Task, Unit: "w", TaskID: i, Start: float64(i), End: float64(i + 1)})
	}
	if sh.Len() != 5 || tr.Len() != 0 {
		t.Fatalf("before flush: shard=%d trace=%d", sh.Len(), tr.Len())
	}
	sh.Flush()
	if sh.Len() != 0 || tr.Len() != 5 {
		t.Fatalf("after flush: shard=%d trace=%d", sh.Len(), tr.Len())
	}
	for i, e := range tr.snapshot() {
		if e.TaskID != i {
			t.Fatalf("event %d has TaskID %d; recording order lost", i, e.TaskID)
		}
	}
	if tr.Dropped() != 0 {
		t.Fatalf("dropped = %d", tr.Dropped())
	}
}

// Past capacity the shard discards its oldest chunks (whole, counted as
// dropped) — memory stays bounded, the tail of the run survives. With
// capacity 4 the chunk size is 4, so recording 7 events seals [0..3], drops
// that chunk when event 4 opens the next one, and keeps [4..6].
func TestShardWrapDropsOldest(t *testing.T) {
	tr := New()
	sh := tr.NewShard(4)
	for i := 0; i < 7; i++ {
		sh.Record(Event{Kind: Task, Unit: "w", TaskID: i})
	}
	if sh.Dropped() != 4 {
		t.Fatalf("shard dropped = %d; want 4", sh.Dropped())
	}
	sh.Flush()
	events := tr.snapshot()
	if len(events) != 3 {
		t.Fatalf("flushed %d events; want 3", len(events))
	}
	for i, e := range events {
		if e.TaskID != i+4 {
			t.Fatalf("event %d has TaskID %d; want %d (oldest chunk dropped, order kept)", i, e.TaskID, i+4)
		}
	}
	if tr.Dropped() != 4 {
		t.Fatalf("trace dropped = %d; want 4", tr.Dropped())
	}
}

func TestShardReusableAfterFlush(t *testing.T) {
	tr := New()
	sh := tr.NewShard(4)
	for i := 0; i < 6; i++ { // wraps once
		sh.Record(Event{Kind: Task, Unit: "w", TaskID: i})
	}
	sh.Flush()
	sh.Record(Event{Kind: Task, Unit: "w", TaskID: 100})
	sh.Flush()
	events := tr.snapshot()
	if last := events[len(events)-1]; last.TaskID != 100 {
		t.Fatalf("post-reuse event = %+v", last)
	}
	if sh.Dropped() != 0 {
		t.Fatalf("dropped not reset: %d", sh.Dropped())
	}
}

func TestShardDefaultCapacity(t *testing.T) {
	sh := New().NewShard(0)
	if sh.limit != DefaultShardCapacity {
		t.Fatalf("limit = %d", sh.limit)
	}
}

// One shard per goroutine is the concurrency contract: many producers, no
// locks, one merged trace. Run under -race in CI.
func TestShardsConcurrentProducers(t *testing.T) {
	tr := New()
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		sh := tr.NewShard(0)
		wg.Add(1)
		go func(w int, sh *Shard) {
			defer wg.Done()
			defer sh.Flush()
			for i := 0; i < per; i++ {
				sh.Record(Event{Kind: Task, Unit: "w", Worker: w, TaskID: i})
			}
		}(w, sh)
	}
	wg.Wait()
	if tr.Len() != workers*per {
		t.Fatalf("len = %d; want %d", tr.Len(), workers*per)
	}
}
