// Package trace records causal execution traces of the task runtime: one
// span per task execution, data transfer or fault-tolerance action, with
// start/end times, placement, and the causal identifiers (task id, parent
// ids, attempt, worker) that link spans into the task DAG. Traces render as
// per-unit timelines (a textual Gantt chart), aggregate statistics, a
// critical path, and export to Chrome trace_event JSON (loadable in Perfetto
// or chrome://tracing) and a JSONL stream — the role StarPU's FxT tracing
// plays for Vite, and the paper's Section II names as an auto-tuner /
// performance-prediction use case for PDL information ("performance relevant
// observations can now be related ... to abstract architectural patterns").
//
// Recording is cheap on hot paths: workers record into per-worker Shards
// (lock-free single-producer ring buffers) that merge into the Trace at
// Flush, so the work-stealing dispatch loop never contends on the trace
// mutex.
package trace

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind discriminates trace events.
type Kind int

const (
	// Task marks a kernel execution on a processing unit.
	Task Kind = iota
	// Transfer marks a data movement into a memory node.
	Transfer
	// Failure marks a task attempt that died on its unit: Start..End spans
	// the wasted occupancy from launch to failure detection.
	Failure
	// Retry marks a failed task being re-queued: Start is the detection
	// time, End the time the task becomes ready again (after backoff).
	Retry
	// Blacklist marks a unit being taken out of scheduling after a failure.
	Blacklist
	// Recover marks a blacklisted unit being re-admitted.
	Recover
	// Steal marks a worker obtaining a task from another worker's queue
	// (real-mode work-stealing dispatch). Start == End: it is an instant.
	Steal
	// Place marks a scheduler routing a task to a worker's queue at push
	// time (real-mode dmda dispatch). Start == End: it is an instant; From
	// carries the decision source ("model", "fallback" or "cold").
	Place
	// Straggler marks the anomaly detector flagging a task whose observed
	// latency exceeded the model estimate its placement used by more than
	// the configured multiple. Start == End: it is an instant; From carries
	// the reason string (observed-vs-estimate ratio and slowdown score).
	Straggler
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Task:
		return "task"
	case Transfer:
		return "transfer"
	case Failure:
		return "failure"
	case Retry:
		return "retry"
	case Blacklist:
		return "blacklist"
	case Recover:
		return "recover"
	case Steal:
		return "steal"
	case Place:
		return "place"
	case Straggler:
		return "straggler"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind inverts Kind.String.
func ParseKind(s string) (Kind, error) {
	for k := Task; k <= Straggler; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("trace: unknown event kind %q", s)
}

// MarshalJSON encodes the kind by name, keeping JSONL traces readable and
// stable across reorderings of the Kind constants.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON decodes a kind name.
func (k *Kind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	parsed, err := ParseKind(s)
	if err != nil {
		return err
	}
	*k = parsed
	return nil
}

// NoTask marks events that are not attributable to a task (unit-level
// blacklist/recover events).
const NoTask = -1

// Event is one traced occurrence. Times are seconds (virtual in sim mode,
// wall-clock offsets in real mode).
type Event struct {
	Kind  Kind    `json:"kind"`
	Unit  string  `json:"unit"`            // executing PU id, or destination memory node for transfers
	Label string  `json:"label,omitempty"` // task label / handle name
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	Bytes int64   `json:"bytes,omitempty"` // transfers only

	// Causal span identifiers.

	// TaskID is the submission-order id of the task this event belongs to,
	// or NoTask for unit-level events. For transfers it identifies the
	// consuming task.
	TaskID int `json:"task"`
	// ParentIDs are the task ids this task depends on (the DAG edges), set
	// on Task events so exporters can draw dependency arrows and the
	// critical path can be extracted.
	ParentIDs []int `json:"parents,omitempty"`
	// Attempt numbers the execution attempt of the task (0 = first try).
	Attempt int `json:"attempt,omitempty"`
	// Worker is the executing worker/unit index, or -1 when unknown.
	Worker int `json:"worker"`
	// From names the victim unit on Steal events (the queue the task was
	// taken from), so exporters can draw steal arrows between lanes, and
	// the decision source on Place events ("model", "fallback", "cold").
	From string `json:"from,omitempty"`
	// Transfer is the modelled data-transfer seconds folded into a Place
	// decision's score (data-aware dmda); zero when the operands were
	// already resident on the chosen worker's memory node.
	Transfer float64 `json:"transfer,omitempty"`
	// Node identifies the cluster node the event happened on ("" for
	// single-process runs). The cluster master stamps its own label on
	// control events and the target node on dispatches; pdlworkerd stamps
	// its node id on locally recorded spans, so `pdltrace merge` can
	// combine per-node traces into one timeline with per-node lanes.
	Node string `json:"node,omitempty"`
}

// Duration returns End - Start.
func (e Event) Duration() float64 { return e.End - e.Start }

// Trace collects events. It is safe for concurrent use (the real engine
// records from multiple workers); hot paths should prefer per-worker Shards
// over direct Record calls.
type Trace struct {
	mu      sync.Mutex
	events  []Event   // direct Record() appends
	blocks  [][]Event // chunks transferred whole from flushed Shards
	meta    map[string]string
	dropped uint64
	// limit bounds the events held between drains (0 = unbounded); see
	// SetLimit. droppedTotal counts every drop for the life of the trace —
	// unlike dropped it survives Drain, so a metric fed from it is monotonic.
	limit        int
	droppedTotal uint64
}

// New returns an empty trace.
func New() *Trace { return &Trace{} }

// Record appends an event.
func (t *Trace) Record(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = append(t.events, e)
	t.enforceLimitLocked()
}

// SetLimit bounds how many events the trace holds (0 or negative removes
// the bound). Once the limit is exceeded the oldest events are discarded —
// whole flushed-shard blocks first, then direct records — and counted in
// Dropped and DroppedTotal. A collector that drains regularly never hits
// the bound; a trace nobody drains stops growing instead of eating the
// process (the pdlworkerd span buffer sets this).
func (t *Trace) SetLimit(n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n < 0 {
		n = 0
	}
	t.limit = n
	t.enforceLimitLocked()
}

// enforceLimitLocked discards oldest events past the limit. Block drops are
// whole-block (ownership-transferred shard chunks are never split), so the
// trace may briefly undershoot the limit by up to one block. Callers hold
// t.mu.
func (t *Trace) enforceLimitLocked() {
	if t.limit <= 0 {
		return
	}
	over := t.lenLocked() - t.limit
	for over > 0 && len(t.blocks) > 0 {
		n := len(t.blocks[0])
		t.dropped += uint64(n)
		t.droppedTotal += uint64(n)
		over -= n
		t.blocks[0] = nil
		t.blocks = t.blocks[1:]
	}
	if over > 0 {
		if over > len(t.events) {
			over = len(t.events)
		}
		t.dropped += uint64(over)
		t.droppedTotal += uint64(over)
		t.events = append(t.events[:0], t.events[over:]...)
	}
}

// SetMeta attaches a metadata key/value to the trace (scheduler, kernel ISA,
// problem size...). Exporters carry metadata through both formats.
func (t *Trace) SetMeta(key, value string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.meta == nil {
		t.meta = map[string]string{}
	}
	t.meta[key] = value
}

// Meta returns a copy of the trace metadata.
func (t *Trace) Meta() map[string]string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]string, len(t.meta))
	for k, v := range t.meta {
		out[k] = v
	}
	return out
}

// Dropped reports how many events were overwritten in shard ring buffers or
// discarded by the trace's own limit before they could be read (0 unless a
// run overflowed). Drain resets it along with the events it accounts for.
func (t *Trace) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// DroppedTotal reports the monotonic drop count for the life of the trace:
// unlike Dropped it is never reset by Drain, so counters exported from it
// only move forward.
func (t *Trace) DroppedTotal() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.droppedTotal
}

// lenLocked counts all recorded events. Callers hold t.mu.
func (t *Trace) lenLocked() int {
	n := len(t.events)
	for _, b := range t.blocks {
		n += len(b)
	}
	return n
}

// eachLocked visits every recorded event: flushed shard blocks first, then
// direct records. Callers hold t.mu. Aggregates iterate in place instead of
// flattening, so reads never copy the event set.
func (t *Trace) eachLocked(f func(e *Event)) {
	for _, b := range t.blocks {
		for i := range b {
			f(&b[i])
		}
	}
	for i := range t.events {
		f(&t.events[i])
	}
}

// sortEvents orders events by start time, ties broken by unit then label,
// so exported output is deterministic.
func sortEvents(out []Event) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		if out[i].Unit != out[j].Unit {
			return out[i].Unit < out[j].Unit
		}
		return out[i].Label < out[j].Label
	})
}

// Events returns a copy of the recorded events sorted by start time (ties
// broken by unit then label, so output is deterministic). This is the one
// O(n log n) entry point, paid per export; the aggregate helpers below
// compute over the raw slice instead.
func (t *Trace) Events() []Event {
	out := t.snapshot()
	sortEvents(out)
	return out
}

// snapshot flattens all recorded events into one exact-size slice without
// sorting.
func (t *Trace) snapshot() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, t.lenLocked())
	for _, b := range t.blocks {
		out = append(out, b...)
	}
	return append(out, t.events...)
}

// Drain atomically moves the recorded events into a returned snapshot
// trace and clears the receiver, which stays usable for further recording.
// Metadata is copied to the snapshot and kept on the receiver, so both
// halves remain attributable (node, epoch). This is the primitive behind
// GET /v1/trace?drain=1: a collector repeatedly drains a live worker trace
// without double-reading spans and without racing recorders. Events still
// buffered in unflushed Shards are untouched and surface in a later drain.
func (t *Trace) Drain() *Trace {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := &Trace{
		events:  t.events,
		blocks:  t.blocks,
		dropped: t.dropped,
	}
	if len(t.meta) > 0 {
		out.meta = make(map[string]string, len(t.meta))
		for k, v := range t.meta {
			out.meta[k] = v
		}
	}
	t.events, t.blocks, t.dropped = nil, nil, 0
	return out
}

// Len returns the number of recorded events.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lenLocked()
}

// Makespan returns the latest End across all events (0 for empty traces).
// Computed in place under the lock: no copy, no sort.
func (t *Trace) Makespan() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	end := 0.0
	t.eachLocked(func(e *Event) {
		if e.End > end {
			end = e.End
		}
	})
	return end
}

// OfKind returns the recorded events of one kind in deterministic order.
// Only the matching subset is sorted, not the whole trace.
func (t *Trace) OfKind(k Kind) []Event {
	t.mu.Lock()
	var out []Event
	t.eachLocked(func(e *Event) {
		if e.Kind == k {
			out = append(out, *e)
		}
	})
	t.mu.Unlock()
	sortEvents(out)
	return out
}

// UnitStats aggregates one unit's activity.
type UnitStats struct {
	Unit      string
	Tasks     int
	Busy      float64
	Transfers int
	Bytes     int64
	Failures  int
	Steals    int
	Retries   int
}

// ByUnit aggregates events per unit, sorted by unit id. Aggregation is
// order-independent, so it runs over the raw slice under the lock.
func (t *Trace) ByUnit() []UnitStats {
	t.mu.Lock()
	agg := map[string]*UnitStats{}
	t.eachLocked(func(e *Event) {
		s := agg[e.Unit]
		if s == nil {
			s = &UnitStats{Unit: e.Unit}
			agg[e.Unit] = s
		}
		switch e.Kind {
		case Task:
			s.Tasks++
			s.Busy += e.Duration()
		case Transfer:
			s.Transfers++
			s.Bytes += e.Bytes
		case Failure:
			s.Failures++
			s.Busy += e.Duration()
		case Steal:
			s.Steals++
		case Retry:
			s.Retries++
		}
	})
	t.mu.Unlock()
	out := make([]UnitStats, 0, len(agg))
	for _, s := range agg {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Unit < out[j].Unit })
	return out
}

// Gantt renders a textual Gantt chart: one row per unit, `width` columns
// spanning [0, makespan]. Task time renders as '#', transfer time as '~',
// idle as '.'. Rows are sorted by unit id.
func (t *Trace) Gantt(width int) string {
	if width < 10 {
		width = 10
	}
	events := t.Events()
	if len(events) == 0 {
		return "(empty trace)\n"
	}
	makespan := 0.0
	for _, e := range events {
		if e.End > makespan {
			makespan = e.End
		}
	}
	if makespan <= 0 {
		return "(zero-length trace)\n"
	}
	rows := map[string][]byte{}
	var units []string
	cell := func(ts float64) int {
		c := int(ts / makespan * float64(width))
		if c >= width {
			c = width - 1
		}
		if c < 0 {
			c = 0
		}
		return c
	}
	for _, e := range events {
		var mark byte
		switch e.Kind {
		case Task:
			mark = '#'
		case Transfer:
			mark = '~'
		case Failure:
			mark = 'X'
		default:
			continue // control events (retry/blacklist/recover/steal) have no lane
		}
		row, ok := rows[e.Unit]
		if !ok {
			row = []byte(strings.Repeat(".", width))
			rows[e.Unit] = row
			units = append(units, e.Unit)
		}
		for c := cell(e.Start); c <= cell(e.End); c++ {
			// Tasks and failures dominate transfers visually.
			if row[c] != '#' && row[c] != 'X' {
				row[c] = mark
			}
		}
	}
	sort.Strings(units)
	var b strings.Builder
	fmt.Fprintf(&b, "gantt: %d events over %.6fs ('#'=compute '~'=transfer 'X'=failure)\n", len(events), makespan)
	for _, u := range units {
		fmt.Fprintf(&b, "%-12s |%s|\n", u, rows[u])
	}
	return b.String()
}

// Summary renders per-unit aggregates.
func (t *Trace) Summary() string {
	var b strings.Builder
	for _, s := range t.ByUnit() {
		fmt.Fprintf(&b, "%-12s tasks=%-6d busy=%.6fs transfers=%d (%d bytes)\n",
			s.Unit, s.Tasks, s.Busy, s.Transfers, s.Bytes)
	}
	return b.String()
}

// published is the process-global "last run" slot backing pdlserved's
// /debug/trace endpoint: engines publish their trace at the end of Run, the
// server serves whatever was published last (net/http/pprof-style global
// observability state).
var published atomic.Pointer[Trace]

// Publish makes t the process's most recent trace.
func Publish(t *Trace) { published.Store(t) }

// Published returns the most recently published trace, or nil.
func Published() *Trace { return published.Load() }
