// Package trace records execution traces of the task runtime: one event per
// task execution and per data transfer, with start/end times and placement.
// Traces render as per-unit timelines (a textual Gantt chart) and aggregate
// statistics, the kind of output StarPU's FxT tracing feeds into Vite and
// the paper's Section II names as an auto-tuner/performance-prediction use
// case for PDL information ("performance relevant observations can now be
// related ... to abstract architectural patterns").
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Kind discriminates trace events.
type Kind int

const (
	// Task marks a kernel execution on a processing unit.
	Task Kind = iota
	// Transfer marks a data movement into a memory node.
	Transfer
	// Failure marks a task attempt that died on its unit: Start..End spans
	// the wasted occupancy from launch to failure detection.
	Failure
	// Retry marks a failed task being re-queued: Start is the detection
	// time, End the time the task becomes ready again (after backoff).
	Retry
	// Blacklist marks a unit being taken out of scheduling after a failure.
	Blacklist
	// Recover marks a blacklisted unit being re-admitted.
	Recover
	// Steal marks a worker obtaining a task from another worker's queue
	// (real-mode work-stealing dispatch). Start == End: it is an instant.
	Steal
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Task:
		return "task"
	case Transfer:
		return "transfer"
	case Failure:
		return "failure"
	case Retry:
		return "retry"
	case Blacklist:
		return "blacklist"
	case Recover:
		return "recover"
	case Steal:
		return "steal"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one traced occurrence. Times are seconds (virtual in sim mode,
// wall-clock offsets in real mode).
type Event struct {
	Kind  Kind
	Unit  string // executing PU id, or destination memory node for transfers
	Label string // task label / handle name
	Start float64
	End   float64
	Bytes int64 // transfers only
}

// Duration returns End - Start.
func (e Event) Duration() float64 { return e.End - e.Start }

// Trace collects events. It is safe for concurrent use (the real engine
// records from multiple workers).
type Trace struct {
	mu     sync.Mutex
	events []Event
}

// New returns an empty trace.
func New() *Trace { return &Trace{} }

// Record appends an event.
func (t *Trace) Record(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = append(t.events, e)
}

// Events returns a copy of the recorded events sorted by start time (ties
// broken by unit then label, so output is deterministic).
func (t *Trace) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := append([]Event(nil), t.events...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		if out[i].Unit != out[j].Unit {
			return out[i].Unit < out[j].Unit
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// Len returns the number of recorded events.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Makespan returns the latest End across all events (0 for empty traces).
func (t *Trace) Makespan() float64 {
	end := 0.0
	for _, e := range t.Events() {
		if e.End > end {
			end = e.End
		}
	}
	return end
}

// OfKind returns the recorded events of one kind, in Events() order.
func (t *Trace) OfKind(k Kind) []Event {
	var out []Event
	for _, e := range t.Events() {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// UnitStats aggregates one unit's activity.
type UnitStats struct {
	Unit      string
	Tasks     int
	Busy      float64
	Transfers int
	Bytes     int64
	Failures  int
}

// ByUnit aggregates events per unit, sorted by unit id.
func (t *Trace) ByUnit() []UnitStats {
	agg := map[string]*UnitStats{}
	for _, e := range t.Events() {
		s := agg[e.Unit]
		if s == nil {
			s = &UnitStats{Unit: e.Unit}
			agg[e.Unit] = s
		}
		switch e.Kind {
		case Task:
			s.Tasks++
			s.Busy += e.Duration()
		case Transfer:
			s.Transfers++
			s.Bytes += e.Bytes
		case Failure:
			s.Failures++
			s.Busy += e.Duration()
		}
	}
	out := make([]UnitStats, 0, len(agg))
	for _, s := range agg {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Unit < out[j].Unit })
	return out
}

// Gantt renders a textual Gantt chart: one row per unit, `width` columns
// spanning [0, makespan]. Task time renders as '#', transfer time as '~',
// idle as '.'. Rows are sorted by unit id.
func (t *Trace) Gantt(width int) string {
	if width < 10 {
		width = 10
	}
	events := t.Events()
	if len(events) == 0 {
		return "(empty trace)\n"
	}
	makespan := t.Makespan()
	if makespan <= 0 {
		return "(zero-length trace)\n"
	}
	rows := map[string][]byte{}
	var units []string
	cell := func(ts float64) int {
		c := int(ts / makespan * float64(width))
		if c >= width {
			c = width - 1
		}
		if c < 0 {
			c = 0
		}
		return c
	}
	for _, e := range events {
		var mark byte
		switch e.Kind {
		case Task:
			mark = '#'
		case Transfer:
			mark = '~'
		case Failure:
			mark = 'X'
		default:
			continue // control events (retry/blacklist/recover) have no lane
		}
		row, ok := rows[e.Unit]
		if !ok {
			row = []byte(strings.Repeat(".", width))
			rows[e.Unit] = row
			units = append(units, e.Unit)
		}
		for c := cell(e.Start); c <= cell(e.End); c++ {
			// Tasks and failures dominate transfers visually.
			if row[c] != '#' && row[c] != 'X' {
				row[c] = mark
			}
		}
	}
	sort.Strings(units)
	var b strings.Builder
	fmt.Fprintf(&b, "gantt: %d events over %.6fs ('#'=compute '~'=transfer 'X'=failure)\n", len(events), makespan)
	for _, u := range units {
		fmt.Fprintf(&b, "%-12s |%s|\n", u, rows[u])
	}
	return b.String()
}

// Summary renders per-unit aggregates.
func (t *Trace) Summary() string {
	var b strings.Builder
	for _, s := range t.ByUnit() {
		fmt.Fprintf(&b, "%-12s tasks=%-6d busy=%.6fs transfers=%d (%d bytes)\n",
			s.Unit, s.Tasks, s.Busy, s.Transfers, s.Bytes)
	}
	return b.String()
}
