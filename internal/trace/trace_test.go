package trace

import (
	"strings"
	"sync"
	"testing"
)

func sample() *Trace {
	t := New()
	t.Record(Event{Kind: Task, Unit: "cpu0", Label: "t1", Start: 0, End: 2})
	t.Record(Event{Kind: Task, Unit: "gpu0", Label: "t2", Start: 1, End: 3})
	t.Record(Event{Kind: Transfer, Unit: "node1", Label: "A", Start: 0.5, End: 1, Bytes: 1024})
	t.Record(Event{Kind: Task, Unit: "cpu0", Label: "t3", Start: 2, End: 4})
	return t
}

func TestEventsSortedDeterministic(t *testing.T) {
	tr := sample()
	ev := tr.Events()
	if len(ev) != 4 || tr.Len() != 4 {
		t.Fatalf("events = %d", len(ev))
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].Start < ev[i-1].Start {
			t.Fatalf("events unsorted at %d", i)
		}
	}
	if ev[0].Label != "t1" || ev[3].Label != "t3" {
		t.Fatalf("order = %v", ev)
	}
}

func TestMakespanAndDuration(t *testing.T) {
	tr := sample()
	if tr.Makespan() != 4 {
		t.Fatalf("makespan = %g", tr.Makespan())
	}
	if (Event{Start: 1, End: 3.5}).Duration() != 2.5 {
		t.Fatal("Duration wrong")
	}
	if New().Makespan() != 0 {
		t.Fatal("empty makespan should be 0")
	}
}

func TestByUnit(t *testing.T) {
	tr := sample()
	stats := tr.ByUnit()
	if len(stats) != 3 {
		t.Fatalf("units = %d", len(stats))
	}
	// Sorted: cpu0, gpu0, node1.
	if stats[0].Unit != "cpu0" || stats[0].Tasks != 2 || stats[0].Busy != 4 {
		t.Fatalf("cpu0 = %+v", stats[0])
	}
	if stats[2].Unit != "node1" || stats[2].Transfers != 1 || stats[2].Bytes != 1024 {
		t.Fatalf("node1 = %+v", stats[2])
	}
}

func TestGantt(t *testing.T) {
	tr := sample()
	g := tr.Gantt(40)
	if !strings.Contains(g, "cpu0") || !strings.Contains(g, "gpu0") || !strings.Contains(g, "node1") {
		t.Fatalf("gantt missing rows:\n%s", g)
	}
	if !strings.Contains(g, "#") || !strings.Contains(g, "~") {
		t.Fatalf("gantt missing marks:\n%s", g)
	}
	// cpu0 is busy end to end: its row has no idle dots.
	for _, line := range strings.Split(g, "\n") {
		if strings.HasPrefix(line, "cpu0") && strings.Contains(line, ".") {
			t.Fatalf("cpu0 should be fully busy:\n%s", g)
		}
	}
	if New().Gantt(40) != "(empty trace)\n" {
		t.Fatal("empty gantt wrong")
	}
	zero := New()
	zero.Record(Event{Kind: Task, Unit: "u", Start: 0, End: 0})
	if !strings.Contains(zero.Gantt(40), "zero-length") {
		t.Fatal("zero-length gantt wrong")
	}
	// Tiny width is clamped.
	if !strings.Contains(tr.Gantt(1), "cpu0") {
		t.Fatal("width clamp broken")
	}
}

func TestSummary(t *testing.T) {
	s := sample().Summary()
	if !strings.Contains(s, "cpu0") || !strings.Contains(s, "tasks=2") {
		t.Fatalf("summary = %q", s)
	}
}

func TestConcurrentRecord(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Record(Event{Kind: Task, Unit: "u", Start: float64(i), End: float64(i + 1)})
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != 800 {
		t.Fatalf("len = %d", tr.Len())
	}
}

func TestKindString(t *testing.T) {
	if Task.String() != "task" || Transfer.String() != "transfer" {
		t.Fatal("Kind.String wrong")
	}
}
